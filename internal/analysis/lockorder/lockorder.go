// Package lockorder enforces the acquire-release discipline of the
// serving layer's mutexes and the persistent cache file's flock
// (DESIGN §15): a manually acquired lock must be released on every
// path out of the function that took it, and nested acquisitions must
// follow the canonical lock order, so the scheduler can never deadlock
// against the cache file or a job's own state lock.
//
// Three rules:
//
//  1. release discipline — after x.mu.Lock() the function must either
//     defer the matching Unlock immediately or reach an Unlock before
//     every return. Falling off the end of the function (or returning)
//     with the lock still held is flagged. The cache file's flock is
//     exempt: it is held for the file's whole lifetime by design and
//     released in Close.
//
//  2. lock ordering — acquiring a lock that ranks at or before an
//     already-held lock in Order is an inversion (equal rank is a
//     self-deadlock on Go's non-reentrant mutexes). The held set
//     crosses function calls through Acquires facts: every analyzed
//     function exports the transitive set of lock classes it may
//     take, so `s.mu.Lock(); j.journal.Append(e)` sees the Journal
//     mutex the callee takes.
//
//  3. flock pairing — functions listed in AcquireFuncs/ReleaseFuncs
//     (lockCacheFile/unlockCacheFile) move the flock class in and out
//     of the held set so inversions against it are visible, without
//     imposing the per-function release rule.
//
// Lock classes are named "pkgpath.Type.field" for struct-field mutexes
// and "pkgpath.name" for package-level ones; locals use the bare
// variable name. Only classes listed in Order participate in rule 2.
// Per-site exemptions use //sitlint:allow lockorder with justification.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"sitam/internal/analysis"
)

// Scope lists the packages whose locking the analyzer checks. Mutable
// for the analysistest fixtures.
var Scope = map[string]bool{
	"sitam/internal/serve": true,
	"sitam/internal/core":  true,
}

// Order is the canonical acquisition order, outermost first. A lock
// may only be taken while holding locks that appear strictly earlier.
// Mutable for the analysistest fixtures.
var Order = []string{
	"sitam/internal/serve.Scheduler.mu",
	"sitam/internal/serve.Job.mu",
	"sitam/internal/serve.FlightRecorder.mu",
	"sitam/internal/serve.Journal.mu",
	"sitam/internal/core.CacheFile.flock",
	"sitam/internal/core.CacheFile.mu",
	"sitam/internal/core.CachedEvaluator.mu",
}

// AcquireFuncs maps fully qualified function names to the lock class
// they acquire on behalf of the caller (the flock wrappers).
var AcquireFuncs = map[string]string{
	"sitam/internal/core.lockCacheFile": "sitam/internal/core.CacheFile.flock",
}

// ReleaseFuncs is the inverse of AcquireFuncs.
var ReleaseFuncs = map[string]string{
	"sitam/internal/core.unlockCacheFile": "sitam/internal/core.CacheFile.flock",
}

// NoReleaseCheck lists lock classes exempt from rule 1: locks held
// beyond the acquiring function's lifetime by design.
var NoReleaseCheck = map[string]bool{
	"sitam/internal/core.CacheFile.flock": true,
}

// Acquires is the object fact exported for every function that may
// take locks: the transitive set of lock classes, so callers can check
// ordering across package boundaries.
type Acquires struct{ Classes []string }

func (*Acquires) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "mutex/flock release discipline and canonical lock ordering in serve and the cache file",
	Run:       run,
	FactTypes: []analysis.Fact{(*Acquires)(nil)},
}

func rank(class string) int {
	for i, c := range Order {
		if c == class {
			return i
		}
	}
	return -1
}

type funcInfo struct {
	decl     *ast.FuncDecl
	key      string
	acquires map[string]bool // transitive lock classes
	calls    []string        // in-package callee keys
}

func run(pass *analysis.Pass) error {
	if !Scope[pass.Pkg.Path()] {
		return nil
	}

	// Pass 1: per-function direct acquisitions and the in-package call
	// graph, then a fixpoint for the transitive Acquires sets.
	funcs := map[string]*funcInfo{}
	var order []string
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fi := &funcInfo{decl: fd, key: analysis.ObjectKey(obj), acquires: map[string]bool{}}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // goroutine/closure acquisitions are not the caller's
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if class := p(pass).acquireClass(call); class != "" {
					fi.acquires[class] = true
				}
				if pkgPath, key, _, ok := analysis.FuncKey(pass.TypesInfo, call); ok && pkgPath == pass.Pkg.Path() {
					fi.calls = append(fi.calls, key)
				} else if ok {
					// Imported callee: union its exported fact now.
					var fact Acquires
					if fn := analysis.CalleeFunc(pass.TypesInfo, call); fn != nil && pass.ImportObjectFact(fn, &fact) {
						for _, c := range fact.Classes {
							fi.acquires[c] = true
						}
					}
				}
				return true
			})
			funcs[fi.key] = fi
			order = append(order, fi.key)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, key := range order {
			fi := funcs[key]
			for _, callee := range fi.calls {
				cf := funcs[callee]
				if cf == nil {
					continue
				}
				for c := range cf.acquires {
					if !fi.acquires[c] {
						fi.acquires[c] = true
						changed = true
					}
				}
			}
		}
	}
	for _, key := range order {
		fi := funcs[key]
		if len(fi.acquires) == 0 {
			continue
		}
		classes := make([]string, 0, len(fi.acquires))
		for c := range fi.acquires {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		if obj, ok := pass.TypesInfo.Defs[fi.decl.Name].(*types.Func); ok {
			pass.ExportObjectFact(obj, &Acquires{Classes: classes})
		}
	}

	// Pass 2: the held-set walk over every function body (and every
	// function literal as an independent body — a goroutine releases
	// nothing for its spawner).
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					p(pass).checkBody(fn.Body, funcs)
				}
				return true
			case *ast.FuncLit:
				p(pass).checkBody(fn.Body, funcs)
				return true
			}
			return true
		})
	}
	return nil
}

// checker wraps the pass with the lock-walk helpers.
type checker struct{ pass *analysis.Pass }

func p(pass *analysis.Pass) *checker { return &checker{pass} }

type heldLock struct {
	class    string
	pos      token.Pos
	deferred bool // a defer releases it at function exit
}

// checkBody runs the held-set machine over one function body. Nested
// function literals are skipped (each gets its own checkBody from the
// ast.Inspect in run).
func (c *checker) checkBody(body *ast.BlockStmt, funcs map[string]*funcInfo) {
	var held []heldLock
	c.walkStmts(body.List, &held, funcs)
	for _, h := range held {
		if !h.deferred && !NoReleaseCheck[h.class] {
			c.pass.Reportf(h.pos, "%s locked here is not released on every path out of the function (no defer, no unlock before the end)", h.class)
		}
	}
}

func (c *checker) walkStmts(stmts []ast.Stmt, held *[]heldLock, funcs map[string]*funcInfo) {
	for _, stmt := range stmts {
		c.walkStmt(stmt, held, funcs)
	}
}

func (c *checker) walkStmt(stmt ast.Stmt, held *[]heldLock, funcs map[string]*funcInfo) {
	switch s := stmt.(type) {
	case *ast.DeferStmt:
		if class := c.releaseClass(s.Call); class != "" {
			for i := len(*held) - 1; i >= 0; i-- {
				if (*held)[i].class == class && !(*held)[i].deferred {
					(*held)[i].deferred = true
					break
				}
			}
			return
		}
		c.checkCalls(s.Call, held, funcs)
	case *ast.ReturnStmt:
		for _, h := range *held {
			if !h.deferred && !NoReleaseCheck[h.class] {
				c.pass.Reportf(s.Pos(), "return while %s (locked at %s) is still held", h.class, c.pass.Fset.Position(h.pos))
			}
		}
		for _, res := range s.Results {
			c.checkExprCalls(res, held, funcs)
		}
	case *ast.ExprStmt:
		c.checkExprCalls(s.X, held, funcs)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.checkExprCalls(rhs, held, funcs)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held, funcs)
		}
		c.checkExprCalls(s.Cond, held, funcs)
		c.walkStmts(s.Body.List, held, funcs)
		if s.Else != nil {
			c.walkStmt(s.Else, held, funcs)
		}
	case *ast.BlockStmt:
		c.walkStmts(s.List, held, funcs)
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held, funcs)
		}
		c.walkStmts(s.Body.List, held, funcs)
	case *ast.RangeStmt:
		c.checkExprCalls(s.X, held, funcs)
		c.walkStmts(s.Body.List, held, funcs)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held, funcs)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(cl.Body, held, funcs)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(cl.Body, held, funcs)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				c.walkStmts(cl.Body, held, funcs)
			}
		}
	case *ast.GoStmt:
		// The spawned goroutine's lock activity is its own; its body is
		// checked independently.
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, held, funcs)
	}
}

// checkExprCalls visits every call in the expression in source order,
// updating the held set and checking ordering. Function literals are
// not entered.
func (c *checker) checkExprCalls(expr ast.Expr, held *[]heldLock, funcs map[string]*funcInfo) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			c.handleCall(call, held, funcs)
		}
		return true
	})
}

func (c *checker) checkCalls(call *ast.CallExpr, held *[]heldLock, funcs map[string]*funcInfo) {
	c.checkExprCalls(call, held, funcs)
}

func (c *checker) handleCall(call *ast.CallExpr, held *[]heldLock, funcs map[string]*funcInfo) {
	if class := c.acquireClass(call); class != "" {
		c.checkOrdering(call.Pos(), class, held)
		*held = append(*held, heldLock{class: class, pos: call.Pos()})
		return
	}
	if class := c.releaseClass(call); class != "" {
		for i := len(*held) - 1; i >= 0; i-- {
			if (*held)[i].class == class {
				*held = append((*held)[:i], (*held)[i+1:]...)
				return
			}
		}
		return
	}
	// Ordinary call: check the callee's transitive acquisitions
	// against the held set.
	pkgPath, key, fn, ok := analysis.FuncKey(c.pass.TypesInfo, call)
	if !ok {
		return
	}
	var classes []string
	if pkgPath == c.pass.Pkg.Path() {
		if fi := funcs[key]; fi != nil {
			for cl := range fi.acquires {
				classes = append(classes, cl)
			}
			sort.Strings(classes)
		}
	} else {
		var fact Acquires
		if c.pass.ImportObjectFact(fn, &fact) {
			classes = fact.Classes
		}
	}
	for _, cl := range classes {
		c.checkOrdering(call.Pos(), cl, held)
	}
}

func (c *checker) checkOrdering(pos token.Pos, class string, held *[]heldLock) {
	r := rank(class)
	if r < 0 {
		return
	}
	for _, h := range *held {
		hr := rank(h.class)
		if hr < 0 {
			continue
		}
		if h.class == class {
			c.pass.Reportf(pos, "acquiring %s while already holding it (locked at %s): self-deadlock on a non-reentrant mutex", class, c.pass.Fset.Position(h.pos))
			continue
		}
		if r <= hr {
			c.pass.Reportf(pos, "lock-order inversion: acquiring %s while holding %s (locked at %s); the canonical order takes %s first", class, h.class, c.pass.Fset.Position(h.pos), class)
		}
	}
}

// acquireClass returns the lock class a call acquires, or "".
func (c *checker) acquireClass(call *ast.CallExpr) string {
	fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return ""
	}
	if fn.Pkg() != nil {
		if class, ok := AcquireFuncs[fn.Pkg().Path()+"."+analysis.ObjectKey(fn)]; ok {
			return class
		}
	}
	if (fn.Name() == "Lock" || fn.Name() == "RLock") && isSyncMutexMethod(fn) {
		return c.mutexClass(call)
	}
	return ""
}

// releaseClass returns the lock class a call releases, or "".
func (c *checker) releaseClass(call *ast.CallExpr) string {
	fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return ""
	}
	if fn.Pkg() != nil {
		if class, ok := ReleaseFuncs[fn.Pkg().Path()+"."+analysis.ObjectKey(fn)]; ok {
			return class
		}
	}
	if (fn.Name() == "Unlock" || fn.Name() == "RUnlock") && isSyncMutexMethod(fn) {
		return c.mutexClass(call)
	}
	return ""
}

func isSyncMutexMethod(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "sync"
}

// mutexClass names the mutex a Lock/Unlock call operates on:
// "pkg.Type.field" for struct fields, "pkg.name" for package-level
// variables, the bare name for locals, "" when unidentifiable.
func (c *checker) mutexClass(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		s := c.pass.TypesInfo.Selections[x]
		if s == nil {
			return ""
		}
		t := s.Recv()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + s.Obj().Name()
	case *ast.Ident:
		obj := c.pass.TypesInfo.ObjectOf(x)
		if obj == nil {
			return ""
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return obj.Name()
	}
	return ""
}
