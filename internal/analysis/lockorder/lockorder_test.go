package lockorder_test

import (
	"testing"

	"sitam/internal/analysis/analysistest"
	"sitam/internal/analysis/lockorder"
)

func TestFixtures(t *testing.T) {
	oldScope, oldOrder := lockorder.Scope, lockorder.Order
	lockorder.Scope = map[string]bool{"lockorder_a": true, "lockorder_b": true}
	lockorder.Order = []string{
		"lockorder_a.Outer.Mu",
		"lockorder_a.Inner.Mu",
		"lockorder_b.Guard.Mu",
	}
	defer func() { lockorder.Scope, lockorder.Order = oldScope, oldOrder }()
	analysistest.Run(t, lockorder.Analyzer, "lockorder_a", "lockorder_b")
}
