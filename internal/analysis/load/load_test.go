package load

import (
	"os"
	"path/filepath"
	"testing"
)

// moduleRoot walks up from the working directory to the directory
// holding go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test's working directory")
		}
		dir = parent
	}
}

func TestLoadTypeChecksModulePackage(t *testing.T) {
	pkgs, err := Load(moduleRoot(t), "sitam/internal/tam")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Path != "sitam/internal/tam" {
		t.Errorf("path = %q", pkg.Path)
	}
	// The loader must resolve both the package's own declarations and
	// its cross-package dependencies (soc, wrapper) via export data.
	if pkg.Types.Scope().Lookup("Rail") == nil {
		t.Error("tam.Rail not found in type-checked package")
	}
	if pkg.Types.Scope().Lookup("Architecture") == nil {
		t.Error("tam.Architecture not found in type-checked package")
	}
	if len(pkg.TypesInfo.Defs) == 0 {
		t.Error("TypesInfo.Defs is empty — type checking did not run")
	}
}

func TestResolverChecksAdHocFiles(t *testing.T) {
	root := moduleRoot(t)
	r, err := NewResolver(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "x.go")
	code := `package x

import "sitam/internal/tam"

func Widths(a *tam.Architecture) int { return a.TotalWidth() }
`
	if err := os.WriteFile(src, []byte(code), 0o666); err != nil {
		t.Fatal(err)
	}
	pkg, err := r.CheckFiles("x", src)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Scope().Lookup("Widths") == nil {
		t.Error("Widths not found in ad-hoc package")
	}
}
