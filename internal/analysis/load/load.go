// Package load type-checks packages of the surrounding module for the
// sitlint analyzers without importing golang.org/x/tools: it shells
// out to `go list -export -deps -json` for package metadata and
// compiled export data (both come from the local build cache, so the
// loader works offline), parses the target packages' sources with
// go/parser, and type-checks them with go/types using an importer that
// reads dependency export data through go/importer's lookup hook.
//
// Two entry points:
//
//   - Load resolves package patterns (./..., specific import paths)
//     and returns the matched packages fully type-checked, in
//     dependency order — a package always precedes the packages that
//     import it, so a fact-propagating session can analyze the slice
//     front to back and every imported fact already exists.
//
//   - NewResolver + CheckFiles type-check an ad-hoc file set (the
//     analysistest fixtures under testdata/src, which `go list` cannot
//     see) against the same dependency universe. Checked packages are
//     registered with the resolver, so a later CheckFiles may import
//     an earlier one by its package path — the fixture leg of
//     cross-package fact tests.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"sitam/internal/analysis"
)

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Resolver owns one dependency universe: the export data of every
// package reachable from the patterns it was built from, plus the
// token.FileSet and importer shared by all type-checking done with it.
type Resolver struct {
	Fset    *token.FileSet
	exports map[string]string // canonical import path -> export data file
	imports map[string]string // source import path -> canonical path
	source  map[string]*types.Package
	targets []*listPackage
	imp     types.Importer
}

// NewResolver runs `go list -export -deps -json` in dir over the given
// patterns and returns a resolver whose universe covers every listed
// package. Patterns may mix module-relative patterns (./...) with
// explicit stdlib import paths fixtures need (e.g. "math/rand").
func NewResolver(dir string, patterns ...string) (*Resolver, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Imports,ImportMap,DepOnly,Standard,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	r := &Resolver{
		Fset:    token.NewFileSet(),
		exports: map[string]string{},
		imports: map[string]string{},
		source:  map[string]*types.Package{},
	}
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			r.exports[p.ImportPath] = p.Export
		}
		for src, canonical := range p.ImportMap {
			r.imports[src] = canonical
		}
		if !p.DepOnly {
			pkg := p
			r.targets = append(r.targets, &pkg)
		}
	}
	r.sortTargets()
	gc := importer.ForCompiler(r.Fset, "gc", r.lookup)
	r.imp = &resolverImporter{r: r, gc: gc}
	return r, nil
}

// sortTargets orders the target packages topologically: a target
// always precedes targets that import it. `go list -deps` already
// emits dependencies first, but the order is re-derived here so the
// fact-propagation contract does not rest on an unspecified detail of
// the go command's output.
func (r *Resolver) sortTargets() {
	byPath := make(map[string]*listPackage, len(r.targets))
	for _, t := range r.targets {
		byPath[t.ImportPath] = t
	}
	var (
		sorted  []*listPackage
		state   = map[string]int{} // 0 unvisited, 1 visiting, 2 done
		visit   func(t *listPackage)
		visited = 0
	)
	visit = func(t *listPackage) {
		if state[t.ImportPath] != 0 {
			return // done, or a cycle — go list would have failed on a real cycle
		}
		state[t.ImportPath] = 1
		for _, imp := range t.Imports {
			if canonical, ok := r.imports[imp]; ok {
				imp = canonical
			}
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		state[t.ImportPath] = 2
		sorted = append(sorted, t)
		visited++
	}
	for _, t := range r.targets {
		visit(t)
	}
	if visited == len(r.targets) {
		r.targets = sorted
	}
}

// lookup feeds dependency export data to the gc importer.
func (r *Resolver) lookup(path string) (io.ReadCloser, error) {
	if canonical, ok := r.imports[path]; ok {
		path = canonical
	}
	file, ok := r.exports[path]
	if !ok {
		return nil, fmt.Errorf("load: no export data for %q", path)
	}
	return os.Open(file)
}

// resolverImporter resolves imports through compiled export data,
// falling back to packages the resolver has itself type-checked from
// source. The fallback is consulted only for paths with no export data
// (fixture packages), never for module or stdlib packages — mixing a
// source-checked package into a universe that also references its
// export-data twin would split type identities.
type resolverImporter struct {
	r  *Resolver
	gc types.Importer
}

func (i *resolverImporter) Import(path string) (*types.Package, error) {
	canonical := path
	if c, ok := i.r.imports[path]; ok {
		canonical = c
	}
	if _, hasExport := i.r.exports[canonical]; !hasExport {
		if p := i.r.source[canonical]; p != nil {
			return p, nil
		}
	}
	return i.gc.Import(path)
}

// CheckFiles parses and type-checks the given files as one package
// with the given import path. Imports resolve through the resolver's
// export universe, so the files may import anything the module (or the
// resolver's extra patterns) reaches — plus any package previously
// checked through this resolver (fixture cross-imports).
func (r *Resolver) CheckFiles(pkgPath string, filenames ...string) (*analysis.Package, error) {
	files := make([]*ast.File, len(filenames))
	for i, name := range filenames {
		f, err := parser.ParseFile(r.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files[i] = f
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: r.imp}
	tpkg, err := conf.Check(pkgPath, r.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", pkgPath, err)
	}
	if _, hasExport := r.exports[pkgPath]; !hasExport {
		r.source[pkgPath] = tpkg
	}
	return &analysis.Package{
		Path:      pkgPath,
		Fset:      r.Fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// Load type-checks every package matched by the patterns (dependencies
// come from export data and are not re-checked) and returns them in
// dependency order. dir is the working directory for pattern
// resolution — normally the module root.
func Load(dir string, patterns ...string) ([]*analysis.Package, error) {
	r, err := NewResolver(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var out []*analysis.Package
	for _, t := range r.targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		names := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			names[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := r.CheckFiles(t.ImportPath, names...)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}
