// Package analysis is a small, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer is a named
// check with a Run function, a Pass hands the Run function one
// type-checked package, and diagnostics are reported through the Pass.
//
// The subset is deliberately tiny — no facts, no flags, no result
// sharing between analyzers — because the five sitlint analyzers are
// all single-package syntax+types checks. The API mirrors the x/tools
// names (Analyzer, Pass, Diagnostic, Reportf) so that, should the real
// module ever become available to this repo, the analyzers port by
// changing one import path.
//
// # Suppression directives
//
// A diagnostic is suppressed by a directive comment on the flagged
// line or on the line directly above it:
//
//	//sitlint:allow detrand — wall-clock feeds the trace's DurNS field
//
// The directive names one or more comma-separated analyzers (or "all")
// and should carry a short justification. Suppressions are part of the
// reviewed source, which is the allow-list policy of the suite: every
// exemption is visible in the diff that introduces it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one lint pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //sitlint:allow directives. By convention a lowercase single
	// word.
	Name string

	// Doc is the analyzer's documentation: first line summary, then
	// the invariant it enforces and its allow-list policy.
	Doc string

	// Run applies the analyzer to one package, reporting diagnostics
	// through pass.Report. The returned error aborts the whole lint
	// run and is reserved for analyzer bugs, not findings.
	Run func(pass *Pass) error
}

// Pass is the interface between one Analyzer and one type-checked
// package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Set by the driver; analyzers
	// normally call Reportf instead.
	Report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// InTestFile reports whether pos lies in a _test.go file. The sitlint
// analyzers skip test files: tests deliberately violate invariants to
// prove the production code defends them (e.g. the differential suite
// corrupts a rail directly to check MarkDirty), and the run-time
// checks they exercise are the dynamic counterpart of these static
// ones.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.File(pos).Name(), "_test.go")
}

// Package is one loaded, type-checked package an analyzer can run on.
// Both the sitlint driver and the analysistest fixture runner produce
// this shape.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Run applies one analyzer to one package and returns its diagnostics
// with suppression directives already applied, sorted by position.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	sup := collectSuppressions(pkg.Fset, pkg.Files)
	var out []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
	}
	pass.Report = func(d Diagnostic) {
		if d.Analyzer == "" {
			d.Analyzer = a.Name
		}
		if sup.allows(pkg.Fset, d.Pos, a.Name) {
			return
		}
		out = append(out, d)
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// RunAll applies every analyzer to every package, concatenating the
// diagnostics in (package, analyzer) order.
func RunAll(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			ds, err := Run(a, pkg)
			if err != nil {
				return nil, err
			}
			out = append(out, ds...)
		}
	}
	return out, nil
}

// suppressions maps file name -> line -> set of allowed analyzer names
// ("all" allows every analyzer).
type suppressions map[string]map[int]map[string]bool

const directivePrefix = "//sitlint:allow"

// collectSuppressions scans the files' comments for //sitlint:allow
// directives. A directive suppresses the named analyzers on its own
// line and on the following line (so it can sit above the flagged
// statement or trail it).
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, directivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //sitlint:allowother
				}
				// The analyzer list ends at the first token that is
				// not a comma-separated name; everything after is the
				// justification.
				names := strings.FieldsFunc(strings.Fields(rest)[0], func(r rune) bool { return r == ',' })
				position := fset.Position(c.Pos())
				byLine := sup[position.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					sup[position.Filename] = byLine
				}
				for _, line := range []int{position.Line, position.Line + 1} {
					set := byLine[line]
					if set == nil {
						set = map[string]bool{}
						byLine[line] = set
					}
					for _, n := range names {
						set[n] = true
					}
				}
			}
		}
	}
	return sup
}

func (s suppressions) allows(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	if len(s) == 0 || !pos.IsValid() {
		return false
	}
	position := fset.Position(pos)
	set := s[position.Filename][position.Line]
	return set[analyzer] || set["all"]
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// FuncFromPkg resolves a call expression to a package-level function
// or method object declared in the package with the given import path,
// or nil. Builtins, conversions and locals yield nil.
func FuncFromPkg(info *types.Info, call *ast.CallExpr, pkgPath string) *types.Func {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return nil
	}
	return fn
}

// CalleeFunc resolves a call's callee to a *types.Func (function or
// method), or nil for builtins, conversions and calls of non-named
// function values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
