// Package analysis is a small, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer is a named
// check with a Run function, a Pass hands the Run function one
// type-checked package, and diagnostics are reported through the Pass.
//
// The subset mirrors the x/tools names (Analyzer, Pass, Diagnostic,
// Reportf, Fact, ExportObjectFact/ImportObjectFact) so that, should the
// real module ever become available to this repo, the analyzers port by
// changing one import path. Since the v2 suite the subset includes
// object facts: an analyzer can attach a serializable fact to a
// package-level object while analyzing its defining package and read it
// back when a later package references that object. Facts flow through
// a Session — one per standalone run, or reconstructed from .vetx files
// in vettool mode — and are keyed by (analyzer, package path, object
// key) strings rather than object identity, so a fact exported while
// type-checking a package from source is found again when the same
// object is reached through compiled export data.
//
// # Suppression directives
//
// A diagnostic is suppressed by a directive comment on the flagged
// line or on the line directly above it:
//
//	//sitlint:allow detrand — wall-clock feeds the trace's DurNS field
//
// The directive names one or more comma-separated analyzers (or "all")
// and should carry a short justification. Suppressions are part of the
// reviewed source, which is the allow-list policy of the suite: every
// exemption is visible in the diff that introduces it. The Session
// records which directives actually suppressed something, so the
// driver's -audit mode can flag stale directives that no longer match
// any diagnostic.
package analysis

import (
	"encoding/gob"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"reflect"
	"sort"
	"strings"
)

// Analyzer describes one lint pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //sitlint:allow directives. By convention a lowercase single
	// word.
	Name string

	// Doc is the analyzer's documentation: first line summary, then
	// the invariant it enforces and its allow-list policy.
	Doc string

	// Run applies the analyzer to one package, reporting diagnostics
	// through pass.Report. The returned error aborts the whole lint
	// run and is reserved for analyzer bugs, not findings.
	Run func(pass *Pass) error

	// FactTypes lists prototype values (pointers to struct types
	// implementing Fact) of every fact kind the analyzer exports or
	// imports. Required for gob round-tripping in vettool mode; an
	// ExportObjectFact of an unlisted type panics.
	FactTypes []Fact
}

// Fact is a serializable observation an analyzer attaches to an object
// in one package and consumes in downstream packages. Implementations
// are pointers to gob-encodable structs; the AFact marker method keeps
// arbitrary types out of the fact store.
type Fact interface{ AFact() }

// Pass is the interface between one Analyzer and one type-checked
// package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Set by the driver; analyzers
	// normally call Reportf instead.
	Report func(Diagnostic)

	session *Session
	pkgPath string // scoping path (may differ from Pkg.Path() for test variants)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// InTestFile reports whether pos lies in a _test.go file. The sitlint
// analyzers skip test files: tests deliberately violate invariants to
// prove the production code defends them (e.g. the differential suite
// corrupts a rail directly to check MarkDirty), and the run-time
// checks they exercise are the dynamic counterpart of these static
// ones.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.File(pos).Name(), "_test.go")
}

// ObjectKey is the session-stable name of a package-level object:
// "Name" for functions, variables and types, "Recv.Name" for methods
// (pointer receivers dereferenced). The key deliberately carries no
// type identity so that the source-checked and export-data views of
// the same object agree.
func ObjectKey(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + fn.Name()
			}
		}
	}
	return obj.Name()
}

// ExportObjectFact attaches fact to obj for downstream packages. The
// object must belong to some package (builtins are ignored) and the
// fact's type must be listed in the analyzer's FactTypes.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil || obj.Pkg() == nil {
		return
	}
	p.checkFactType(fact)
	p.session.setFact(p.Analyzer.Name, obj.Pkg().Path(), ObjectKey(obj), fact)
}

// ImportObjectFact copies the fact of the receiver's analyzer attached
// to obj into fact (a pointer to the matching struct type) and reports
// whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	p.checkFactType(fact)
	return p.session.getFact(p.Analyzer.Name, obj.Pkg().Path(), ObjectKey(obj), fact)
}

func (p *Pass) checkFactType(fact Fact) {
	t := reflect.TypeOf(fact)
	for _, proto := range p.Analyzer.FactTypes {
		if reflect.TypeOf(proto) == t {
			return
		}
	}
	panic(fmt.Sprintf("%s: fact type %T not declared in FactTypes", p.Analyzer.Name, fact))
}

// Package is one loaded, type-checked package an analyzer can run on.
// Both the sitlint driver and the analysistest fixture runner produce
// this shape.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// factKey names one stored fact. Object facts are keyed by strings so
// they survive the source-vs-export-data object identity split.
type factKey struct {
	analyzer string
	pkg      string
	object   string
	typ      reflect.Type
}

// Session carries the cross-package state of one lint run: the fact
// store and the suppression-directive usage record. A Session is not
// safe for concurrent use; drivers analyze packages sequentially in
// dependency order.
type Session struct {
	facts      map[factKey]Fact
	directives map[string]*Directive // "file:line" -> record
	supCache   map[*ast.File]bool    // files already scanned for directives
}

// NewSession returns an empty session.
func NewSession() *Session {
	return &Session{
		facts:      map[factKey]Fact{},
		directives: map[string]*Directive{},
		supCache:   map[*ast.File]bool{},
	}
}

func (s *Session) setFact(analyzer, pkg, object string, fact Fact) {
	s.facts[factKey{analyzer, pkg, object, reflect.TypeOf(fact)}] = fact
}

func (s *Session) getFact(analyzer, pkg, object string, fact Fact) bool {
	stored, ok := s.facts[factKey{analyzer, pkg, object, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// FactRecord is the serialized form of one stored fact (the .vetx
// payload in vettool mode).
type FactRecord struct {
	Analyzer string
	Pkg      string
	Object   string
	Fact     Fact
}

// Facts returns every stored fact in a deterministic order.
func (s *Session) Facts() []FactRecord {
	out := make([]FactRecord, 0, len(s.facts))
	for k, f := range s.facts {
		out = append(out, FactRecord{Analyzer: k.analyzer, Pkg: k.pkg, Object: k.object, Fact: f})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return fmt.Sprintf("%T", a.Fact) < fmt.Sprintf("%T", b.Fact)
	})
	return out
}

// AddFacts merges previously serialized facts into the session.
func (s *Session) AddFacts(records []FactRecord) {
	for _, r := range records {
		if r.Fact == nil {
			continue
		}
		s.setFact(r.Analyzer, r.Pkg, r.Object, r.Fact)
	}
}

// EncodeFacts writes the session's facts as a gob stream. Fact types
// must have been registered with RegisterFactTypes.
func (s *Session) EncodeFacts(w io.Writer) error {
	return gob.NewEncoder(w).Encode(s.Facts())
}

// DecodeFacts merges a gob stream produced by EncodeFacts. An empty
// stream (the facts file of a fact-free unit) is not an error.
func (s *Session) DecodeFacts(r io.Reader) error {
	var records []FactRecord
	if err := gob.NewDecoder(r).Decode(&records); err != nil {
		if err == io.EOF {
			return nil
		}
		return err
	}
	s.AddFacts(records)
	return nil
}

// RegisterFactTypes registers every fact type of the given analyzers
// with encoding/gob so FactRecord's Fact interface field round-trips.
func RegisterFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// Directive is one //sitlint:allow comment found during the run, with
// the record of which analyzers it actually suppressed.
type Directive struct {
	File  string
	Line  int
	Names []string // analyzer names listed on the directive

	hits map[string]int // analyzer name -> diagnostics suppressed
}

// Used reports whether the directive suppressed at least one
// diagnostic of the named analyzer during the session ("all"
// directives count hits under the concrete analyzer names).
func (d *Directive) Used(name string) bool {
	if name == "all" {
		return len(d.hits) > 0
	}
	return d.hits[name] > 0
}

// Stale returns the directive's listed names that suppressed nothing.
// Only meaningful after the full suite ran over the directive's
// package; a partial run under-reports usage.
func (d *Directive) Stale() []string {
	var out []string
	for _, n := range d.Names {
		if !d.Used(n) {
			out = append(out, n)
		}
	}
	return out
}

// Directives returns every directive seen by the session, ordered by
// (file, line).
func (s *Session) Directives() []*Directive {
	out := make([]*Directive, 0, len(s.directives))
	for _, d := range s.directives {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// Run applies one analyzer to one package with a throwaway session and
// returns its diagnostics with suppression directives already applied,
// sorted by position. Fact-free analyzers behave exactly as before;
// fact-carrying analyzers see only the facts of this single package.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	return RunSession(NewSession(), a, pkg)
}

// RunSession applies one analyzer to one package inside an ongoing
// session: facts exported by earlier packages are visible, facts
// exported here stay for later packages, and suppression hits
// accumulate for the audit.
func RunSession(s *Session, a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	sup := s.suppressionsFor(pkg)
	var out []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		session:   s,
		pkgPath:   pkg.Path,
	}
	pass.Report = func(d Diagnostic) {
		if d.Analyzer == "" {
			d.Analyzer = a.Name
		}
		if sup.allows(pkg.Fset, d.Pos, a.Name) {
			return
		}
		out = append(out, d)
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// RunAll applies every analyzer to every package under one shared
// session, concatenating the diagnostics in (package, analyzer) order.
// Packages must be in dependency order for facts to propagate; the
// loader returns them that way.
func RunAll(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	return RunAllSession(NewSession(), analyzers, pkgs)
}

// RunAllSession is RunAll against a caller-owned session (so the
// driver can pre-seed facts from .vetx files and harvest the
// directive-usage record afterwards).
func RunAllSession(s *Session, analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			ds, err := RunSession(s, a, pkg)
			if err != nil {
				return nil, err
			}
			out = append(out, ds...)
		}
	}
	return out, nil
}

// suppressions maps file name -> line -> directives in force there.
type suppressions map[string]map[int][]*Directive

const directivePrefix = "//sitlint:allow"

// suppressionsFor scans the package's comments for //sitlint:allow
// directives, reusing the session-wide directive records so usage
// accumulates across the analyzers that visit the same package. A
// directive suppresses the named analyzers on its own line and on the
// following line (so it can sit above the flagged statement or trail
// it).
func (s *Session) suppressionsFor(pkg *Package) suppressions {
	sup := suppressions{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, directivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //sitlint:allowother
				}
				// The analyzer list ends at the first token that is
				// not a comma-separated name; everything after is the
				// justification.
				names := strings.FieldsFunc(strings.Fields(rest)[0], func(r rune) bool { return r == ',' })
				position := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", position.Filename, position.Line)
				d := s.directives[key]
				if d == nil {
					d = &Directive{File: position.Filename, Line: position.Line, Names: names, hits: map[string]int{}}
					s.directives[key] = d
				}
				byLine := sup[position.Filename]
				if byLine == nil {
					byLine = map[int][]*Directive{}
					sup[position.Filename] = byLine
				}
				for _, line := range []int{position.Line, position.Line + 1} {
					byLine[line] = append(byLine[line], d)
				}
			}
		}
	}
	return sup
}

func (s suppressions) allows(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	if len(s) == 0 || !pos.IsValid() {
		return false
	}
	position := fset.Position(pos)
	for _, d := range s[position.Filename][position.Line] {
		for _, n := range d.Names {
			if n == analyzer || n == "all" {
				d.hits[analyzer]++
				return true
			}
		}
	}
	return false
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// FuncFromPkg resolves a call expression to a package-level function
// or method object declared in the package with the given import path,
// or nil. Builtins, conversions and locals yield nil.
func FuncFromPkg(info *types.Info, call *ast.CallExpr, pkgPath string) *types.Func {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return nil
	}
	return fn
}

// CalleeFunc resolves a call's callee to a *types.Func (function or
// method), or nil for builtins, conversions and calls of non-named
// function values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// FuncKey is the fact object key of a call's callee together with its
// defining package path — the handle analyzers use to look up facts
// for both in-package and imported functions. ok is false for
// builtins, conversions and dynamic calls.
func FuncKey(info *types.Info, call *ast.CallExpr) (pkgPath, key string, fn *types.Func, ok bool) {
	fn = CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", "", nil, false
	}
	return fn.Pkg().Path(), ObjectKey(fn), fn, true
}
