// Package errwrapcheck enforces the sentinel-error discipline the
// facade's error contract depends on: callers classify interruptions
// with errors.Is(err, ErrBudgetExhausted) and the guard wraps
// ErrInternal with %w, so sentinels must survive wrapping anywhere in
// between.
//
// A sentinel is a package-level `var Err... ` of type error (e.g.
// sitam.ErrInternal, core.ErrBudgetExhausted). Two rules:
//
//  1. comparison — a sentinel compared with == or != (including
//     `switch err { case ErrX }`) misses wrapped errors; use
//     errors.Is. Comparisons inside the errors package machinery
//     itself would be fine, but this module has none.
//
//  2. wrapping — an fmt.Errorf argument that is a sentinel must be
//     formatted with %w, not %v/%s: a sentinel demoted to text can no
//     longer be matched by errors.Is downstream, which silently breaks
//     the Partial/Cause classification and the guard's ErrInternal
//     contract.
//
// Allow-list policy: _test.go files are skipped (tests assert exact
// error identity on purpose); individual sites can carry a
// //sitlint:allow errwrapcheck directive.
package errwrapcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"sitam/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errwrapcheck",
	Doc:  "sentinel errors must be compared with errors.Is and wrapped with %w",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if len(f.Decls) > 0 && pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkComparison(pass, n)
				}
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			case *ast.CallExpr:
				checkErrorf(pass, n)
			}
			return true
		})
	}
	return nil
}

// sentinel resolves expr to a package-level error variable named
// Err..., or nil.
func sentinel(pass *analysis.Pass, expr ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.IsField() || !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	// Package-level: parent scope is the package scope.
	if v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !types.Identical(v.Type(), types.Universe.Lookup("error").Type()) {
		return nil
	}
	return v
}

func checkComparison(pass *analysis.Pass, expr *ast.BinaryExpr) {
	for _, side := range []ast.Expr{expr.X, expr.Y} {
		if v := sentinel(pass, side); v != nil {
			pass.Reportf(expr.OpPos,
				"sentinel %s compared with %s misses wrapped errors; use errors.Is(err, %s)",
				v.Name(), expr.Op, v.Name())
			return
		}
	}
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	if t := pass.TypesInfo.TypeOf(sw.Tag); t == nil || !types.Identical(t, types.Universe.Lookup("error").Type()) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if v := sentinel(pass, e); v != nil {
				pass.Reportf(e.Pos(),
					"switch case compares sentinel %s by identity and misses wrapped errors; use errors.Is(err, %s)",
					v.Name(), v.Name())
			}
		}
	}
}

// checkErrorf flags fmt.Errorf calls whose sentinel arguments are not
// matched to a %w verb.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.FuncFromPkg(pass.TypesInfo, call, "fmt")
	if fn == nil || fn.Name() != "Errorf" || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs, mapped := formatVerbs(format)
	if !mapped {
		return
	}
	for i, arg := range call.Args[1:] {
		v := sentinel(pass, arg)
		if v == nil {
			continue
		}
		verb := byte(0)
		if i < len(verbs) {
			verb = verbs[i]
		}
		if verb != 'w' {
			pass.Reportf(arg.Pos(),
				"sentinel %s formatted with %%%c loses its identity for errors.Is; wrap it with %%w",
				v.Name(), printable(verb))
		}
	}
}

func printable(verb byte) byte {
	if verb == 0 {
		return '?'
	}
	return verb
}

// formatVerbs extracts the verb letters of a format string in argument
// order. Explicit argument indexes (%[1]d) and * width/precision are
// rare in this module and make the mapping ambiguous; any occurrence
// aborts the mapping (ok = false) so no false positive is produced.
func formatVerbs(format string) (verbs []byte, ok bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// Skip flags, width and precision.
		for i < len(format) && strings.IndexByte("+-# 0123456789.", format[i]) >= 0 {
			i++
		}
		if i >= len(format) {
			break
		}
		if format[i] == '[' || format[i] == '*' {
			return nil, false
		}
		verbs = append(verbs, format[i])
	}
	return verbs, true
}
