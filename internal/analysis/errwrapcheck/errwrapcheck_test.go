package errwrapcheck_test

import (
	"testing"

	"sitam/internal/analysis/analysistest"
	"sitam/internal/analysis/errwrapcheck"
)

func TestErrwrapcheck(t *testing.T) {
	analysistest.Run(t, errwrapcheck.Analyzer, "a")
}
