// Package a exercises the errwrapcheck analyzer: sentinel errors must
// be compared with errors.Is and wrapped with %w.
package a

import (
	"errors"
	"fmt"

	"sitam/internal/core"
	"sitam/internal/serve"
)

var ErrExhausted = errors.New("exhausted")

// notSentinel's name does not start with Err, so identity comparison
// is not flagged.
var notSentinel = errors.New("not a sentinel")

func flagged(err error) error {
	if err == ErrExhausted { // want `sentinel ErrExhausted compared with == misses wrapped errors`
		return nil
	}
	if ErrExhausted != err { // want `sentinel ErrExhausted compared with != misses wrapped errors`
		return nil
	}
	switch err {
	case core.ErrBudgetExhausted: // want `switch case compares sentinel ErrBudgetExhausted by identity`
		return nil
	}
	if err == serve.ErrOverloaded { // want `sentinel ErrOverloaded compared with == misses wrapped errors`
		return nil
	}
	if false {
		return fmt.Errorf("wrapping: %v", ErrExhausted) // want `sentinel ErrExhausted formatted with %v loses its identity`
	}
	if false {
		return fmt.Errorf("shed: %s", serve.ErrOverloaded) // want `sentinel ErrOverloaded formatted with %s loses its identity`
	}
	return fmt.Errorf("step %d failed: %s", 3, ErrExhausted) // want `sentinel ErrExhausted formatted with %s loses its identity`
}

func allowed(err error) error {
	if errors.Is(err, ErrExhausted) {
		return nil
	}
	if errors.Is(err, core.ErrBudgetExhausted) {
		return nil
	}
	if errors.Is(err, serve.ErrOverloaded) {
		return nil
	}
	if err == nil { // nil is not a sentinel
		return nil
	}
	if err == notSentinel {
		return nil
	}
	switch {
	case errors.Is(err, ErrExhausted): // tagless switch on errors.Is is the idiom
		return nil
	}
	return fmt.Errorf("step %d failed: %w", 3, ErrExhausted)
}

func indexedFormat() error {
	// Explicit argument indexes abort the verb mapping; no report
	// rather than a wrong one.
	return fmt.Errorf("%[1]v", ErrExhausted)
}

func suppressed(err error) bool {
	return err == ErrExhausted //sitlint:allow errwrapcheck — identity check is intentional here
}
