// Package sarif emits the subset of SARIF 2.1.0 (OASIS Static
// Analysis Results Interchange Format) that sitlint's findings need:
// one run, one tool.driver with a rule per analyzer, and one result
// per diagnostic with a physical location. The output is consumed by
// code-scanning UIs and archived by CI, so the field names and the
// version/schema pair follow the spec exactly.
package sarif

import (
	"encoding/json"
	"io"
)

// Version is the SARIF spec version emitted.
const Version = "2.1.0"

// SchemaURI is the canonical 2.1.0 schema.
const SchemaURI = "https://docs.oasis-open.org/sarif/sarif/v2.1.0/os/schemas/sarif-schema-2.1.0.json"

// RootBaseID is the uriBaseId all artifact locations are relative to.
const RootBaseID = "ROOT"

// Log is the top-level SARIF object.
type Log struct {
	Version string `json:"version"`
	Schema  string `json:"$schema"`
	Runs    []*Run `json:"runs"`
}

// Run is one invocation of one tool.
type Run struct {
	Tool               Tool                        `json:"tool"`
	Results            []Result                    `json:"results"`
	OriginalURIBaseIDs map[string]ArtifactLocation `json:"originalUriBaseIds,omitempty"`
}

// Tool wraps the driver description.
type Tool struct {
	Driver Driver `json:"driver"`
}

// Driver describes the analysis tool and its rules.
type Driver struct {
	Name           string `json:"name"`
	InformationURI string `json:"informationUri,omitempty"`
	Rules          []Rule `json:"rules"`
}

// Rule is one analyzer.
type Rule struct {
	ID               string  `json:"id"`
	ShortDescription Message `json:"shortDescription"`
}

// Message carries human-readable text.
type Message struct {
	Text string `json:"text"`
}

// Result is one diagnostic.
type Result struct {
	RuleID    string     `json:"ruleId"`
	Level     string     `json:"level"`
	Message   Message    `json:"message"`
	Locations []Location `json:"locations"`
}

// Location wraps a physical location.
type Location struct {
	PhysicalLocation PhysicalLocation `json:"physicalLocation"`
}

// PhysicalLocation is a file region.
type PhysicalLocation struct {
	ArtifactLocation ArtifactLocation `json:"artifactLocation"`
	Region           Region           `json:"region"`
}

// ArtifactLocation names a file, relative to a uriBaseId when set.
type ArtifactLocation struct {
	URI       string `json:"uri,omitempty"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

// Region is a start position (1-based, per spec).
type Region struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// NewLog builds a single-run log for the named tool. rootURI is the
// absolute file:// URI (with trailing slash) that relative result URIs
// resolve against via the ROOT uriBaseId.
func NewLog(toolName, infoURI, rootURI string, rules []Rule) *Log {
	run := &Run{
		Tool:    Tool{Driver: Driver{Name: toolName, InformationURI: infoURI, Rules: rules}},
		Results: []Result{}, // []: SARIF requires the property even when empty
	}
	if rootURI != "" {
		run.OriginalURIBaseIDs = map[string]ArtifactLocation{
			RootBaseID: {URI: rootURI},
		}
	}
	return &Log{Version: Version, Schema: SchemaURI, Runs: []*Run{run}}
}

// AddResult appends one finding. uri is the forward-slashed path
// relative to the ROOT base.
func (l *Log) AddResult(ruleID, message, uri string, line, col int) {
	run := l.Runs[0]
	run.Results = append(run.Results, Result{
		RuleID:  ruleID,
		Level:   "error",
		Message: Message{Text: message},
		Locations: []Location{{
			PhysicalLocation: PhysicalLocation{
				ArtifactLocation: ArtifactLocation{URI: uri, URIBaseID: RootBaseID},
				Region:           Region{StartLine: line, StartColumn: col},
			},
		}},
	})
}

// Write marshals the log with indentation.
func (l *Log) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l)
}
