package sarif_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"sitam/internal/analysis/sarif"
)

// TestShape validates the emitted JSON against the SARIF 2.1.0
// structural requirements sitlint relies on: version/$schema at the
// top, runs[].tool.driver.rules, results with ruleId, message.text and
// a physicalLocation whose artifactLocation is ROOT-relative.
func TestShape(t *testing.T) {
	log := sarif.NewLog("sitlint", "https://example.invalid/sitlint", "file:///repo/", []sarif.Rule{
		{ID: "lockorder", ShortDescription: sarif.Message{Text: "lock ordering"}},
	})
	log.AddResult("lockorder", "inversion: a while holding b", "internal/serve/scheduler.go", 42, 7)

	var buf bytes.Buffer
	if err := log.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var root map[string]any
	if err := json.Unmarshal(buf.Bytes(), &root); err != nil {
		t.Fatalf("emitted SARIF is not valid JSON: %v", err)
	}
	if v := root["version"]; v != "2.1.0" {
		t.Fatalf("version = %v, want 2.1.0", v)
	}
	if s, _ := root["$schema"].(string); s == "" {
		t.Fatal("$schema missing")
	}
	runs, ok := root["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %v, want one run", root["runs"])
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "sitlint" {
		t.Fatalf("driver.name = %v", driver["name"])
	}
	rules := driver["rules"].([]any)
	if len(rules) != 1 || rules[0].(map[string]any)["id"] != "lockorder" {
		t.Fatalf("rules = %v", rules)
	}
	results := run["results"].([]any)
	if len(results) != 1 {
		t.Fatalf("results = %v", results)
	}
	res := results[0].(map[string]any)
	if res["ruleId"] != "lockorder" || res["level"] != "error" {
		t.Fatalf("result = %v", res)
	}
	if txt := res["message"].(map[string]any)["text"]; txt != "inversion: a while holding b" {
		t.Fatalf("message.text = %v", txt)
	}
	loc := res["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)
	art := loc["artifactLocation"].(map[string]any)
	if art["uri"] != "internal/serve/scheduler.go" || art["uriBaseId"] != "ROOT" {
		t.Fatalf("artifactLocation = %v", art)
	}
	region := loc["region"].(map[string]any)
	if region["startLine"] != float64(42) || region["startColumn"] != float64(7) {
		t.Fatalf("region = %v", region)
	}
	if _, ok := run["originalUriBaseIds"].(map[string]any)["ROOT"]; !ok {
		t.Fatal("originalUriBaseIds.ROOT missing")
	}

	// An empty log still carries the required results array.
	empty := sarif.NewLog("sitlint", "", "", nil)
	buf.Reset()
	if err := empty.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"results": []`)) {
		t.Fatalf("empty log must serialize results as []:\n%s", buf.String())
	}
}
