// Package suite assembles the sitlint analyzer suite: one analyzer
// per cross-package correctness invariant of the optimization engine.
package suite

import (
	"sitam/internal/analysis"
	"sitam/internal/analysis/ctxflow"
	"sitam/internal/analysis/detrand"
	"sitam/internal/analysis/errwrapcheck"
	"sitam/internal/analysis/railmutate"
	"sitam/internal/analysis/traceevent"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer,
		detrand.Analyzer,
		errwrapcheck.Analyzer,
		railmutate.Analyzer,
		traceevent.Analyzer,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
