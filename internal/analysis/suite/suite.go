// Package suite assembles the sitlint analyzer suite: one analyzer
// per cross-package correctness invariant of the optimization engine.
package suite

import (
	"sitam/internal/analysis"
	"sitam/internal/analysis/ctxflow"
	"sitam/internal/analysis/detmerge"
	"sitam/internal/analysis/detrand"
	"sitam/internal/analysis/errwrapcheck"
	"sitam/internal/analysis/fsyncack"
	"sitam/internal/analysis/gorojoin"
	"sitam/internal/analysis/lockorder"
	"sitam/internal/analysis/metricvocab"
	"sitam/internal/analysis/railmutate"
	"sitam/internal/analysis/traceevent"
)

// Analyzers returns the full suite in stable order. The fact-based
// analyzers (detmerge, fsyncack, gorojoin, lockorder, metricvocab)
// propagate object facts across packages, so a session must analyze
// packages in dependency order (load.Load returns them that way).
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer,
		detmerge.Analyzer,
		detrand.Analyzer,
		errwrapcheck.Analyzer,
		fsyncack.Analyzer,
		gorojoin.Analyzer,
		lockorder.Analyzer,
		metricvocab.Analyzer,
		railmutate.Analyzer,
		traceevent.Analyzer,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
