// Package traceevent keeps the structured search trace well-formed at
// the emission sites, statically enforcing what obs.ValidateTrace and
// sitrace -check verify on collected traces:
//
//  1. typed events — every obs.Event composite literal must set its
//     Type field to one of the obs package's Type constants
//     (obs.PhaseStart, obs.MergeAccepted, ...). String literals,
//     conversions and locally invented constants bypass the closed
//     event vocabulary that ReadJSONL and the differential trace
//     suites validate against; unkeyed or Type-less literals build
//     events that fail schema validation at run time.
//
//  2. balanced spans — a function that emits a PhaseStart (directly or
//     via obs.Span) must also emit the matching PhaseEnd in the same
//     function declaration (closures count: the engine's
//     `end := e.phase(...)` pattern emits PhaseEnd from a returned
//     closure). A discarded obs.Span handle can never be closed and is
//     flagged at the call.
//
// Allow-list policy: package internal/obs itself is exempt (Span and
// SpanHandle.End are by design the two halves of one pair), and
// _test.go files are exempt (trace tests construct invalid events to
// exercise ValidateTrace).
package traceevent

import (
	"go/ast"
	"go/types"

	"sitam/internal/analysis"
)

// ObsPath is the import path of the observability package.
var ObsPath = "sitam/internal/obs"

var Analyzer = &analysis.Analyzer{
	Name: "traceevent",
	Doc:  "obs.Event literals must use obs event-type constants; phase spans must balance per function",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == ObsPath {
		return nil
	}
	for _, f := range pass.Files {
		if len(f.Decls) > 0 && pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
		// Event literals outside function bodies (package vars).
		for _, decl := range f.Decls {
			if gd, ok := decl.(*ast.GenDecl); ok {
				ast.Inspect(gd, func(n ast.Node) bool {
					if lit, ok := n.(*ast.CompositeLit); ok {
						checkEventLit(pass, lit)
					}
					return true
				})
			}
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var starts, ends, spanCalls, endCalls int
	var firstStart, firstEnd ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			switch checkEventLit(pass, n) {
			case "PhaseStart":
				starts++
				if firstStart == nil {
					firstStart = n
				}
			case "PhaseEnd":
				ends++
				if firstEnd == nil {
					firstEnd = n
				}
			}
		case *ast.CallExpr:
			fn := analysis.FuncFromPkg(pass.TypesInfo, n, ObsPath)
			if fn == nil {
				return true
			}
			switch {
			case fn.Name() == "Span":
				spanCalls++
				if discarded(pass, fd, n) {
					pass.Reportf(n.Pos(), "obs.Span handle discarded; the span can never emit its PhaseEnd — assign it and call End (or defer it)")
				}
			case fn.Name() == "End" && isSpanHandleMethod(fn):
				endCalls++
			}
		}
		return true
	})
	// A function opening spans must close them somewhere in the same
	// declaration; counts need not match exactly (conditional paths),
	// but one side being entirely absent is statically unbalanced.
	if spanCalls > 0 && endCalls == 0 {
		pass.Reportf(fd.Name.Pos(), "%s opens %d obs.Span span(s) but never calls End in the same function", fd.Name.Name, spanCalls)
	}
	if starts > 0 && ends == 0 && endCalls == 0 {
		pass.Reportf(firstStart.Pos(), "%s emits PhaseStart but no matching PhaseEnd in the same function", fd.Name.Name)
	}
	if ends > 0 && starts == 0 && spanCalls == 0 {
		pass.Reportf(firstEnd.Pos(), "%s emits PhaseEnd but no matching PhaseStart in the same function", fd.Name.Name)
	}
}

// checkEventLit validates one composite literal if it is an obs.Event,
// returning the name of the obs Type constant its Type field uses (""
// when not an Event literal or not a constant — the latter is
// reported).
func checkEventLit(pass *analysis.Pass, lit *ast.CompositeLit) string {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || !isObsNamed(tv.Type, "Event") {
		return ""
	}
	if len(lit.Elts) == 0 {
		pass.Reportf(lit.Pos(), "obs.Event literal without a Type field fails schema validation; set Type to an obs event-type constant")
		return ""
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			pass.Reportf(elt.Pos(), "unkeyed obs.Event literal; use keyed fields with Type set to an obs event-type constant")
			return ""
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Type" {
			continue
		}
		if name := obsTypeConst(pass, kv.Value); name != "" {
			return name
		}
		pass.Reportf(kv.Value.Pos(), "obs.Event Type must be one of the obs event-type constants (closed vocabulary), not a literal or conversion")
		return ""
	}
	pass.Reportf(lit.Pos(), "obs.Event literal without a Type field fails schema validation; set Type to an obs event-type constant")
	return ""
}

// obsTypeConst resolves expr to an obs-package constant of type
// obs.Type and returns its name, or "".
func obsTypeConst(pass *analysis.Pass, expr ast.Expr) string {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	c, ok := pass.TypesInfo.Uses[id].(*types.Const)
	if !ok || c.Pkg() == nil || c.Pkg().Path() != ObsPath || !isObsNamed(c.Type(), "Type") {
		return ""
	}
	return c.Name()
}

// isObsNamed reports whether t is the named obs type with the given
// name.
func isObsNamed(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == ObsPath
}

// isSpanHandleMethod reports whether fn is a method on obs.SpanHandle.
func isSpanHandleMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	return isObsNamed(recv, "SpanHandle")
}

// discarded reports whether the span call's result is dropped: used as
// a bare expression statement, or assigned to the blank identifier.
func discarded(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if ast.Unparen(n.X) == call {
				found = true
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if ast.Unparen(rhs) == call && i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}
