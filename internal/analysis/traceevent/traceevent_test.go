package traceevent_test

import (
	"testing"

	"sitam/internal/analysis/analysistest"
	"sitam/internal/analysis/traceevent"
)

func TestTraceevent(t *testing.T) {
	analysistest.Run(t, traceevent.Analyzer, "a")
}
