// Package a exercises the traceevent analyzer: obs.Event literals must
// use the obs package's event-type constants and phase spans must
// balance within a function declaration.
package a

import "sitam/internal/obs"

// rogue has the right type but is not part of the obs package's closed
// event vocabulary.
const rogue obs.Type = "rogue_event"

var template = obs.Event{Type: obs.CacheHit}

var badTemplate = obs.Event{Phase: "x"} // want `obs\.Event literal without a Type field`

func emitFlagged(sink obs.Sink) {
	sink.Emit(obs.Event{Type: obs.MergeAccepted, Phase: "merge", N: 3})
	sink.Emit(obs.Event{})                    // want `obs\.Event literal without a Type field`
	sink.Emit(obs.Event{Phase: "x"})          // want `obs\.Event literal without a Type field`
	sink.Emit(obs.Event{Type: "phase_start"}) // want `Type must be one of the obs event-type constants`
	sink.Emit(obs.Event{Type: obs.Type("x")}) // want `Type must be one of the obs event-type constants`
	sink.Emit(obs.Event{Type: rogue})         // want `Type must be one of the obs event-type constants`
}

func leakySpan(sink obs.Sink) { // want `opens 1 obs\.Span span\(s\) but never calls End`
	obs.Span(sink, "search") // want `obs\.Span handle discarded`
}

func startOnly(sink obs.Sink) {
	sink.Emit(obs.Event{Type: obs.PhaseStart, Phase: "x"}) // want `emits PhaseStart but no matching PhaseEnd`
}

func endOnly(sink obs.Sink) {
	sink.Emit(obs.Event{Type: obs.PhaseEnd, Phase: "x"}) // want `emits PhaseEnd but no matching PhaseStart`
}

func balancedSpan(sink obs.Sink) {
	span := obs.Span(sink, "search")
	defer span.End(0, 0)
}

// balancedEmit is the engine's phase pattern: the PhaseEnd is emitted
// by a closure returned from the same function declaration.
func balancedEmit(sink obs.Sink) func() {
	sink.Emit(obs.Event{Type: obs.PhaseStart, Phase: "x"})
	return func() {
		sink.Emit(obs.Event{Type: obs.PhaseEnd, Phase: "x"})
	}
}
