package fsyncack_a

import "os"

type WAL struct {
	F *os.File
}

// Frame is the fixture's checksummed record encoder.
func Frame(b []byte) []byte { return b }

func (w *WAL) AppendGood(b []byte) error {
	if _, err := w.F.Write(b); err != nil {
		return err
	}
	return w.F.Sync()
}

func (w *WAL) AppendChecksummed(b []byte) error {
	_, err := w.F.Write(Frame(b))
	return err
}

func (w *WAL) AppendViaIdent(b []byte) error {
	rec := Frame(b)
	_, err := w.F.Write(rec)
	return err
}

func (w *WAL) AppendBad(b []byte) error {
	_, err := w.F.Write(b) // want `no fsync`
	return err
}

func (w *WAL) Flush() error { return w.F.Sync() }

func Smuggle(w *WAL, b []byte) {
	w.F.Write(b) // want `outside its owner's methods`
}

func discardInPackage(w *WAL, b []byte) {
	w.AppendGood(b) // want `discards the error`
}
