package fsyncack_b

import "fsyncack_a"

func good(w *fsyncack_a.WAL, b []byte) error {
	return w.AppendGood(b)
}

func badBare(w *fsyncack_a.WAL, b []byte) {
	w.AppendGood(b) // want `discards the error`
}

func badBlank(w *fsyncack_a.WAL, b []byte) {
	_ = w.AppendGood(b) // want `discards the error`
}

func badDefer(w *fsyncack_a.WAL) {
	defer w.Flush() // want `discards the error`
}

func allowed(w *fsyncack_a.WAL, b []byte) {
	w.AppendGood(b) //sitlint:allow fsyncack — fixture: best-effort append
}
