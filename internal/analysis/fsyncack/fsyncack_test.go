package fsyncack_test

import (
	"testing"

	"sitam/internal/analysis/analysistest"
	"sitam/internal/analysis/fsyncack"
)

func TestFixtures(t *testing.T) {
	oldScope, oldFields, oldWriters := fsyncack.Scope, fsyncack.JournalFields, fsyncack.ChecksumWriters
	fsyncack.Scope = map[string]bool{"fsyncack_a": true}
	fsyncack.JournalFields = map[string]bool{"fsyncack_a.WAL.F": true}
	fsyncack.ChecksumWriters = map[string]bool{"fsyncack_a.Frame": true}
	defer func() {
		fsyncack.Scope, fsyncack.JournalFields, fsyncack.ChecksumWriters = oldScope, oldFields, oldWriters
	}()
	analysistest.Run(t, fsyncack.Analyzer, "fsyncack_a", "fsyncack_b")
}
