// Package fsyncack enforces the durability contract of the two on-disk
// journals (DESIGN §15): the serve job journal acknowledges a write
// only after fsync, and the persistent cache file funnels every raw
// write through its checksummed record encoder. The analyzer pins both
// properties to the file descriptors themselves.
//
// Three rules:
//
//  1. ownership — a Write-family call on a journal fd field
//     (JournalFields) outside a method of the owning type is an error:
//     all mutation goes through the owner's append path.
//
//  2. sync-before-ack — inside an owner method, a Write on the journal
//     fd must be followed by a Sync on the same fd later in the same
//     function, unless the written bytes come from a registered
//     checksummed encoder (ChecksumWriters) — the cache file's
//     deliberately unsynced, checksummed appends.
//
//  3. durable acknowledgement — owner methods that Sync the journal fd
//     export the Durable fact; any call to a Durable function whose
//     error is discarded (expression statement, blank assignment, or
//     defer) is flagged, because the caller acknowledges work whose
//     durability it never learned. The fact crosses package
//     boundaries: the scheduler's journal.Append calls are checked in
//     sitam/internal/serve against facts exported from the same pass,
//     and external callers of core.(*CacheFile).Sync are checked
//     wherever they live.
//
// Per-site exemptions use //sitlint:allow fsyncack with justification.
package fsyncack

import (
	"go/ast"
	"go/token"
	"go/types"

	"sitam/internal/analysis"
)

// Scope lists the packages that own journal fds; rules 1 and 2 and the
// fact export run there. Mutable for the analysistest fixtures.
var Scope = map[string]bool{
	"sitam/internal/serve": true,
	"sitam/internal/core":  true,
}

// JournalFields names the fd struct fields under the durability
// contract, as "pkgpath.Type.field".
var JournalFields = map[string]bool{
	"sitam/internal/serve.Journal.f": true,
	"sitam/internal/core.CacheFile.f": true,
}

// ChecksumWriters names the record encoders whose output may be
// written without an immediate fsync (torn tails are detected by
// checksum on the next open), as "pkgpath.name".
var ChecksumWriters = map[string]bool{
	"sitam/internal/core.appendCacheRecord": true,
}

// writeMethods are the (*os.File) mutation entry points rule 1 and 2
// intercept.
var writeMethods = map[string]bool{"Write": true, "WriteString": true, "WriteAt": true}

// Durable is the object fact exported for owner methods that fsync a
// journal fd: their error return carries the durability verdict and
// must not be discarded.
type Durable struct{}

func (*Durable) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name:      "fsyncack",
	Doc:       "journal writes fsync before acknowledgement; durable-call errors must be checked",
	Run:       run,
	FactTypes: []analysis.Fact{(*Durable)(nil)},
}

func run(pass *analysis.Pass) error {
	if Scope[pass.Pkg.Path()] {
		for _, f := range pass.Files {
			if pass.InTestFile(f.Pos()) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkOwnerRules(pass, fd)
			}
		}
	}
	// Rule 3 runs everywhere: Durable facts flow to any importer.
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		checkDiscardedDurable(pass, f)
	}
	return nil
}

// checkOwnerRules applies rules 1 and 2 to one function and exports
// the Durable fact.
func checkOwnerRules(pass *analysis.Pass, fd *ast.FuncDecl) {
	owner := receiverTypeName(pass, fd)

	// Idents assigned from a checksummed encoder anywhere in the
	// function may be written raw.
	checksummed := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isChecksumWriter(pass, call) {
				continue
			}
			if id, ok := assign.Lhs[i].(*ast.Ident); ok {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					checksummed[obj] = true
				}
			}
		}
		return true
	})

	type fieldCall struct {
		call  *ast.CallExpr
		field string
	}
	var writes []fieldCall
	syncs := map[string][]token.Pos{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, field, ok := journalFieldCall(pass, call)
		if !ok {
			return true
		}
		switch {
		case writeMethods[name]:
			if owner == "" || !ownsField(owner, field) {
				pass.Reportf(call.Pos(), "raw %s on journal fd %s outside its owner's methods: all mutation goes through the owner's append path", name, field)
				return true
			}
			// Checksummed-encoder escape: bytes carry their own
			// integrity check, torn tails are repaired on open.
			if len(call.Args) > 0 {
				switch arg := ast.Unparen(call.Args[0]).(type) {
				case *ast.CallExpr:
					if isChecksumWriter(pass, arg) {
						return true
					}
				case *ast.Ident:
					if obj := pass.TypesInfo.ObjectOf(arg); obj != nil && checksummed[obj] {
						return true
					}
				}
			}
			writes = append(writes, fieldCall{call, field})
		case name == "Sync":
			syncs[field] = append(syncs[field], call.Pos())
		}
		return true
	})

	for _, w := range writes {
		synced := false
		for _, pos := range syncs[w.field] {
			if pos > w.call.Pos() {
				synced = true
				break
			}
		}
		if !synced {
			pass.Reportf(w.call.Pos(), "write to journal fd %s with no fsync before the function returns: the append is acknowledged before it is durable", w.field)
		}
	}

	if owner != "" && len(syncs) > 0 {
		if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
			pass.ExportObjectFact(obj, &Durable{})
		}
	}
}

// checkDiscardedDurable applies rule 3 to one file.
func checkDiscardedDurable(pass *analysis.Pass, f *ast.File) {
	report := func(call *ast.CallExpr, fn *types.Func) {
		pass.Reportf(call.Pos(), "call to %s discards the error that carries its durability verdict", fn.Name())
	}
	durableCall := func(expr ast.Expr) (*ast.CallExpr, *types.Func, bool) {
		call, ok := ast.Unparen(expr).(*ast.CallExpr)
		if !ok {
			return nil, nil, false
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return nil, nil, false
		}
		var fact Durable
		if !pass.ImportObjectFact(fn, &fact) {
			return nil, nil, false
		}
		return call, fn, true
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, fn, ok := durableCall(s.X); ok {
				report(call, fn)
			}
		case *ast.DeferStmt:
			if fn := analysis.CalleeFunc(pass.TypesInfo, s.Call); fn != nil {
				var fact Durable
				if pass.ImportObjectFact(fn, &fact) {
					report(s.Call, fn)
				}
			}
		case *ast.AssignStmt:
			if len(s.Rhs) != 1 {
				return true
			}
			call, fn, ok := durableCall(s.Rhs[0])
			if !ok {
				return true
			}
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
					return true
				}
			}
			report(call, fn)
		}
		return true
	})
}

// journalFieldCall matches a method call on a JournalFields fd and
// returns the method name and the field class.
func journalFieldCall(pass *analysis.Pass, call *ast.CallExpr) (name, field string, ok bool) {
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOK {
		return "", "", false
	}
	inner, innerOK := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !innerOK {
		return "", "", false
	}
	s := pass.TypesInfo.Selections[inner]
	if s == nil {
		return "", "", false
	}
	named, namedOK := derefNamed(s.Recv())
	if !namedOK || named.Obj().Pkg() == nil {
		return "", "", false
	}
	field = named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + s.Obj().Name()
	if !JournalFields[field] {
		return "", "", false
	}
	return sel.Sel.Name, field, true
}

// receiverTypeName returns "pkgpath.Type" for a method, "" otherwise.
func receiverTypeName(pass *analysis.Pass, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	named, ok := derefNamed(t)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// ownsField reports whether the owner type prefix matches the field
// class "pkg.Type.field".
func ownsField(owner, field string) bool {
	return len(field) > len(owner) && field[:len(owner)] == owner && field[len(owner)] == '.'
}

func isChecksumWriter(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	return fn != nil && fn.Pkg() != nil && ChecksumWriters[fn.Pkg().Path()+"."+analysis.ObjectKey(fn)]
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}
