package metricvocab_a

import "sitam/internal/obs"

// Pick is a closed-switch series-name helper — it earns the VocabFunc
// fact and may feed registry calls here and in importing packages.
func Pick(done bool) string {
	if done {
		return "serve_done"
	}
	return "serve_failed"
}

// Leak is not closed over the vocabulary: no fact.
func Leak(s string) string { return s }

func good(r *obs.Registry, version string) {
	r.Counter("serve_shed").Inc()
	r.Gauge(obs.Labels("sitam_jobs_total", "state", "done")).Set(1)
	r.Gauge(obs.Labels("sitam_build_info", "version", version)).Set(1)
	r.Counter(Pick(true)).Inc()
}

func bad(r *obs.Registry, s string) {
	r.Counter("serve_" + s).Inc()                               // want `not a compile-time member`
	r.Counter("zz_bogus").Inc()                                 // want `not in the DESIGN §13 vocabulary`
	r.Gauge(obs.Labels("sitam_jobs_total", "zone", "a")).Set(1) // want `label key "zone" is not in the closed label vocabulary`
	r.Counter(Leak(s)).Inc()                                    // want `not a compile-time member`
	r.Counter(obs.Labels("zz_dyn", "state", "x")).Inc()         // want `"zz_dyn" is not in the DESIGN §13 vocabulary`
}

func allowed(r *obs.Registry, s string) {
	r.Counter(s).Inc() //sitlint:allow metricvocab — fixture: experiment gated elsewhere
}
