package metricvocab_b

import (
	"metricvocab_a"

	"sitam/internal/obs"
)

// The VocabFunc fact on Pick crosses the package boundary.
func goodCross(r *obs.Registry) {
	r.Counter(metricvocab_a.Pick(false)).Inc()
}

func badCross(r *obs.Registry, s string) {
	r.Counter(metricvocab_a.Leak(s)).Inc() // want `not a compile-time member`
}
