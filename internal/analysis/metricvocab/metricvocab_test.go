package metricvocab_test

import (
	"testing"

	"sitam/internal/analysis/analysistest"
	"sitam/internal/analysis/metricvocab"
)

func TestFixtures(t *testing.T) {
	oldScope := metricvocab.Scope
	metricvocab.Scope = map[string]bool{"metricvocab_a": true, "metricvocab_b": true}
	defer func() { metricvocab.Scope = oldScope }()
	analysistest.Run(t, metricvocab.Analyzer, "metricvocab_a", "metricvocab_b")
}
