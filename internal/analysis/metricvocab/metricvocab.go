// Package metricvocab pins the Prometheus exposition surface to the
// closed DESIGN §13 vocabulary (DESIGN §15): every series name and
// label key that can reach the sitamd /metrics endpoint must be a
// compile-time member of Vocab/LabelKeys, so a fleet's dashboards and
// alerts never meet an unplanned series.
//
// The analyzer checks the name argument of every
// Counter/Gauge/Histogram/HistogramBuckets call on an *obs.Registry in
// Scope. The argument must be one of:
//
//   - a constant string in Vocab;
//
//   - an obs.Labels(...) call whose name is a constant in Vocab and
//     whose label keys (the even variadic positions) are constants in
//     LabelKeys — label values stay free;
//
//   - a call to a function carrying the VocabFunc fact: every one of
//     its returns is a single constant string in Vocab (the closed-
//     switch helper idiom). The fact crosses package boundaries.
//
// Snapshot reads (res.Metrics.Counter(...)) are not registrations and
// are out of scope. Per-site exemptions use //sitlint:allow
// metricvocab with justification.
package metricvocab

import (
	"go/ast"
	"go/constant"
	"go/types"

	"sitam/internal/analysis"
)

// Scope lists the packages whose metric registrations are checked.
// Mutable for the analysistest fixtures.
var Scope = map[string]bool{
	"sitam/internal/serve": true,
}

// Vocab is the closed set of series names from DESIGN §13.
var Vocab = map[string]bool{
	"serve_shed":          true,
	"serve_admitted":      true,
	"serve_queue_depth":   true,
	"serve_running":       true,
	"serve_panics":        true,
	"serve_job_ms":        true,
	"serve_cache_entries": true,
	"serve_replayed":      true,
	"serve_orphaned":      true,
	"serve_done":          true,
	"serve_partial":       true,
	"serve_failed":        true,
	"serve_canceled":      true,
	"sitam_jobs_total":    true,
	"sitam_job_phase_ms":  true,
	"sitam_build_info":    true,
}

// LabelKeys is the closed set of label keys.
var LabelKeys = map[string]bool{
	"state":     true,
	"phase":     true,
	"version":   true,
	"goversion": true,
}

// registryMethods are the series-creating entry points on
// *obs.Registry.
var registryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "HistogramBuckets": true,
}

const obsPath = "sitam/internal/obs"

// VocabFunc is the object fact exported for functions whose every
// return is a single constant string inside Vocab — sanctioned
// series-name helpers.
type VocabFunc struct{}

func (*VocabFunc) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name:      "metricvocab",
	Doc:       "metric series names and label keys must come from the closed DESIGN §13 vocabulary",
	Run:       run,
	FactTypes: []analysis.Fact{(*VocabFunc)(nil)},
}

func run(pass *analysis.Pass) error {
	// Fact export first (everywhere), so same-package helper calls
	// resolve during the check below.
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if returnsOnlyVocab(pass, fd) {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					pass.ExportObjectFact(obj, &VocabFunc{})
				}
			}
		}
	}
	if !Scope[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isRegistryMethod(pass, call) && len(call.Args) > 0 {
				checkName(pass, call.Args[0])
			}
			return true
		})
	}
	return nil
}

// checkName validates one series-name argument.
func checkName(pass *analysis.Pass, arg ast.Expr) {
	arg = ast.Unparen(arg)
	if name, ok := constString(pass, arg); ok {
		if !Vocab[name] {
			pass.Reportf(arg.Pos(), "metric series %q is not in the DESIGN §13 vocabulary", name)
		}
		return
	}
	if call, ok := arg.(*ast.CallExpr); ok {
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == obsPath && fn.Name() == "Labels" {
			checkLabels(pass, call)
			return
		}
		if fn != nil {
			var fact VocabFunc
			if pass.ImportObjectFact(fn, &fact) {
				return
			}
		}
	}
	pass.Reportf(arg.Pos(), "metric series name is not a compile-time member of the DESIGN §13 vocabulary: use a Vocab constant, obs.Labels, or a closed-switch helper")
}

// checkLabels validates an obs.Labels(name, k, v, k, v, ...) call.
func checkLabels(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	if name, ok := constString(pass, call.Args[0]); !ok {
		pass.Reportf(call.Args[0].Pos(), "obs.Labels series name is not a compile-time member of the DESIGN §13 vocabulary")
	} else if !Vocab[name] {
		pass.Reportf(call.Args[0].Pos(), "metric series %q is not in the DESIGN §13 vocabulary", name)
	}
	for i := 1; i < len(call.Args); i += 2 {
		if key, ok := constString(pass, call.Args[i]); !ok {
			pass.Reportf(call.Args[i].Pos(), "obs.Labels label key is not a compile-time constant")
		} else if !LabelKeys[key] {
			pass.Reportf(call.Args[i].Pos(), "label key %q is not in the closed label vocabulary", key)
		}
	}
}

// returnsOnlyVocab reports whether every return in the function yields
// a single constant string contained in Vocab.
func returnsOnlyVocab(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil || len(fd.Type.Results.List) != 1 {
		return false
	}
	returns := 0
	ok := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet {
			return true
		}
		returns++
		if len(ret.Results) != 1 {
			ok = false
			return true
		}
		if name, isConst := constString(pass, ret.Results[0]); !isConst || !Vocab[name] {
			ok = false
		}
		return true
	})
	return ok && returns > 0
}

func isRegistryMethod(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPath || !registryMethods[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	return isNamed && named.Obj().Name() == "Registry"
}

func constString(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(expr)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
