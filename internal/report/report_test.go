package report

import (
	"bytes"
	"strings"
	"testing"

	"sitam/internal/core"
	"sitam/internal/sifault"
	"sitam/internal/sischedule"
	"sitam/internal/soc"
)

func optimizedResult(t *testing.T) *core.Result {
	t.Helper()
	s := soc.MustLoadBenchmark("d695")
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := core.BuildGroups(s, patterns, core.GroupingOptions{Parts: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.TAMOptimization(s, 16, gr.Groups, sischedule.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRoundTrip(t *testing.T) {
	res := optimizedResult(t)
	doc := FromResult(res)
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v\n%s", err, buf.String())
	}
	if got.TimeSOC != doc.TimeSOC || got.SOC != doc.SOC || len(got.Rails) != len(doc.Rails) {
		t.Errorf("round trip changed document: %+v vs %+v", got, doc)
	}
	a, b := got.ScheduleOf(), doc.ScheduleOf()
	for g, span := range b {
		if a[g] != span {
			t.Errorf("slot %s changed: %v vs %v", g, a[g], span)
		}
	}
}

func TestDocumentMatchesResult(t *testing.T) {
	res := optimizedResult(t)
	doc := FromResult(res)
	if doc.TimeIn != res.Breakdown.TimeIn || doc.TimeSI != res.Breakdown.TimeSI {
		t.Errorf("breakdown mismatch: %+v vs %+v", doc, res.Breakdown)
	}
	if doc.TotalWire != res.Architecture.TotalWidth() {
		t.Errorf("width mismatch")
	}
	if len(doc.Rails) != len(res.Architecture.Rails) {
		t.Fatalf("rail count mismatch")
	}
	for i, r := range doc.Rails {
		if r.Width != res.Architecture.Rails[i].Width {
			t.Errorf("rail %d width mismatch", i)
		}
	}
	if len(doc.Schedule) != len(res.Schedule.Slots) {
		t.Errorf("slot count mismatch")
	}
}

func TestReadRejectsBadDocuments(t *testing.T) {
	cases := map[string]string{
		"wrong schema":   `{"schema":99,"soc":"x","totalWidth":0,"timeIn":0,"timeSI":0,"timeSOC":0,"rails":[],"siSchedule":[]}`,
		"bad breakdown":  `{"schema":1,"soc":"x","totalWidth":0,"timeIn":1,"timeSI":1,"timeSOC":3,"rails":[],"siSchedule":[]}`,
		"unknown field":  `{"schema":1,"bogus":1}`,
		"zero width":     `{"schema":1,"soc":"x","totalWidth":0,"timeIn":0,"timeSI":0,"timeSOC":0,"rails":[{"index":0,"width":0,"cores":[1],"timeIn":0,"timeSI":0}],"siSchedule":[]}`,
		"width mismatch": `{"schema":1,"soc":"x","totalWidth":5,"timeIn":0,"timeSI":0,"timeSOC":0,"rails":[{"index":0,"width":2,"cores":[1],"timeIn":0,"timeSI":0}],"siSchedule":[]}`,
		"bad rail ref":   `{"schema":1,"soc":"x","totalWidth":2,"timeIn":0,"timeSI":0,"timeSOC":0,"rails":[{"index":0,"width":2,"cores":[1],"timeIn":0,"timeSI":0}],"siSchedule":[{"group":"g","patterns":1,"cores":[1],"rails":[7],"bottleneckRail":0,"begin":0,"end":1}]}`,
		"not json":       `hello`,
	}
	for name, text := range cases {
		if _, err := Read(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted %s", name, text)
		}
	}
}
