// Package report serializes optimization results into a stable JSON
// document for downstream tooling (dashboards, regression tracking,
// diffing runs). The schema is versioned and intentionally flat: rails
// with their core lists and times, scheduled SI slots with begin/end
// and rail sets, and the T_in/T_si/T_soc breakdown.
package report

import (
	"encoding/json"
	"fmt"
	"io"

	"sitam/internal/core"
	"sitam/internal/tam"
)

// SchemaVersion identifies the JSON layout; bump on breaking changes.
const SchemaVersion = 1

// Document is the top-level JSON object.
type Document struct {
	Schema    int     `json:"schema"`
	SOC       string  `json:"soc"`
	TotalWire int     `json:"totalWidth"`
	TimeIn    int64   `json:"timeIn"`
	TimeSI    int64   `json:"timeSI"`
	TimeSOC   int64   `json:"timeSOC"`
	Rails     []Rail  `json:"rails"`
	Schedule  []Slot  `json:"siSchedule"`
	RailSI    []int64 `json:"railSIBusy,omitempty"`
}

// Rail is one TestRail.
type Rail struct {
	Index  int   `json:"index"`
	Width  int   `json:"width"`
	Cores  []int `json:"cores"`
	TimeIn int64 `json:"timeIn"`
	TimeSI int64 `json:"timeSI"`
}

// Slot is one scheduled SI test group.
type Slot struct {
	Group      string `json:"group"`
	Patterns   int64  `json:"patterns"`
	Cores      []int  `json:"cores"`
	Rails      []int  `json:"rails"`
	Bottleneck int    `json:"bottleneckRail"`
	Begin      int64  `json:"begin"`
	End        int64  `json:"end"`
}

// FromResult builds a Document from an optimization result.
func FromResult(res *core.Result) *Document {
	doc := &Document{
		Schema:    SchemaVersion,
		SOC:       res.Architecture.SOC.Name,
		TotalWire: res.Architecture.TotalWidth(),
		TimeIn:    res.Breakdown.TimeIn,
		TimeSI:    res.Breakdown.TimeSI,
		TimeSOC:   res.Breakdown.TimeSOC,
	}
	doc.Rails = railsOf(res.Architecture)
	if res.Schedule != nil {
		doc.RailSI = append([]int64(nil), res.Schedule.RailSI...)
		for _, sl := range res.Schedule.Slots {
			doc.Schedule = append(doc.Schedule, Slot{
				Group:      sl.Group.Name,
				Patterns:   sl.Group.Patterns,
				Cores:      append([]int(nil), sl.Group.Cores...),
				Rails:      append([]int(nil), sl.Rails...),
				Bottleneck: sl.Bottleneck,
				Begin:      sl.Begin,
				End:        sl.End,
			})
		}
	}
	return doc
}

func railsOf(a *tam.Architecture) []Rail {
	rails := make([]Rail, len(a.Rails))
	for i, r := range a.Rails {
		rails[i] = Rail{
			Index:  i,
			Width:  r.Width,
			Cores:  append([]int(nil), r.Cores...),
			TimeIn: r.TimeIn,
			TimeSI: r.TimeSI,
		}
	}
	return rails
}

// Write encodes the document as indented JSON.
func (d *Document) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Read decodes and validates a document.
func Read(r io.Reader) (*Document, error) {
	var d Document
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Validate checks internal consistency of a document.
func (d *Document) Validate() error {
	if d.Schema != SchemaVersion {
		return fmt.Errorf("report: schema %d, want %d", d.Schema, SchemaVersion)
	}
	if d.TimeSOC != d.TimeIn+d.TimeSI {
		return fmt.Errorf("report: timeSOC %d != timeIn %d + timeSI %d", d.TimeSOC, d.TimeIn, d.TimeSI)
	}
	width := 0
	for i, r := range d.Rails {
		if r.Index != i {
			return fmt.Errorf("report: rail %d has index %d", i, r.Index)
		}
		if r.Width < 1 {
			return fmt.Errorf("report: rail %d has width %d", i, r.Width)
		}
		width += r.Width
	}
	if width != d.TotalWire {
		return fmt.Errorf("report: rail widths sum to %d, totalWidth says %d", width, d.TotalWire)
	}
	for _, s := range d.Schedule {
		if s.End < s.Begin {
			return fmt.Errorf("report: slot %q ends before it begins", s.Group)
		}
		for _, ri := range s.Rails {
			if ri < 0 || ri >= len(d.Rails) {
				return fmt.Errorf("report: slot %q references rail %d of %d", s.Group, ri, len(d.Rails))
			}
		}
	}
	return nil
}

// ScheduleOf rebuilds a comparable schedule summary (begin/end per
// group) for diffing two documents.
func (d *Document) ScheduleOf() map[string][2]int64 {
	out := make(map[string][2]int64, len(d.Schedule))
	for _, s := range d.Schedule {
		out[s.Group] = [2]int64{s.Begin, s.End}
	}
	return out
}
