// Package hypergraph implements weighted hypergraph partitioning by
// multilevel recursive bisection with Fiduccia–Mattheyses (FM)
// refinement. It stands in for the hMetis package the paper uses for the
// "horizontal" dimension of SI test-set compaction: vertices are cores
// (weighted by wrapper output cell count), hyperedges are SI test
// patterns connecting their care cores (weighted by pattern
// multiplicity), and the partitioner minimizes the total weight of cut
// hyperedges — the number of SI patterns that must remain full-length —
// subject to a balance constraint on the vertex weights.
package hypergraph

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"sitam/internal/obs"
)

// Edge is one hyperedge: a set of vertex indices and a weight.
type Edge struct {
	Pins   []int
	Weight int64
}

// Hypergraph is a vertex-weighted, edge-weighted hypergraph.
type Hypergraph struct {
	VertexWeight []int64
	Edges        []Edge
}

// New creates a hypergraph with n vertices of the given weights.
func New(weights []int64) *Hypergraph {
	return &Hypergraph{VertexWeight: append([]int64(nil), weights...)}
}

// AddEdge adds a hyperedge over the given pins. Duplicate pins are
// deduplicated; single-pin edges are kept (they are never cut and do not
// influence partitioning, but they keep pattern accounting simple).
func (h *Hypergraph) AddEdge(pins []int, weight int64) error {
	if weight < 0 {
		return fmt.Errorf("hypergraph: negative edge weight %d", weight)
	}
	seen := make(map[int]struct{}, len(pins))
	uniq := make([]int, 0, len(pins))
	for _, p := range pins {
		if p < 0 || p >= len(h.VertexWeight) {
			return fmt.Errorf("hypergraph: pin %d out of range [0,%d)", p, len(h.VertexWeight))
		}
		if _, dup := seen[p]; !dup {
			seen[p] = struct{}{}
			uniq = append(uniq, p)
		}
	}
	sort.Ints(uniq)
	h.Edges = append(h.Edges, Edge{Pins: uniq, Weight: weight})
	return nil
}

// NumVertices returns the vertex count.
func (h *Hypergraph) NumVertices() int { return len(h.VertexWeight) }

// TotalVertexWeight returns the sum of vertex weights.
func (h *Hypergraph) TotalVertexWeight() int64 {
	var t int64
	for _, w := range h.VertexWeight {
		t += w
	}
	return t
}

// CutWeight returns the total weight of hyperedges spanning more than
// one part under the given assignment.
func (h *Hypergraph) CutWeight(assign []int) int64 {
	var cut int64
	for _, e := range h.Edges {
		if len(e.Pins) == 0 {
			continue
		}
		first := assign[e.Pins[0]]
		for _, p := range e.Pins[1:] {
			if assign[p] != first {
				cut += e.Weight
				break
			}
		}
	}
	return cut
}

// Options configures partitioning.
type Options struct {
	// Tolerance is the allowed relative imbalance: each part's weight
	// may exceed the perfectly balanced share by this fraction.
	// Zero defaults to 0.10 (hMetis' customary UBfactor=10).
	Tolerance float64

	// Seed drives the randomized coarsening and initial partitions.
	Seed int64

	// Restarts is the number of randomized initial partitions tried at
	// the coarsest level; the best refined result wins. Zero defaults
	// to 8.
	Restarts int

	// CoarsenTo stops coarsening once the vertex count is at or below
	// this size. Zero defaults to 40.
	CoarsenTo int

	// Trace receives the partitioner's search-trace events: a
	// "partition" phase span whose PhaseEnd carries the cut weight,
	// plus a deadline_hit event when the search ran degraded. nil
	// disables tracing.
	Trace obs.Sink
}

func (o Options) withDefaults() Options {
	if o.Tolerance == 0 {
		o.Tolerance = 0.10
	}
	if o.Restarts == 0 {
		o.Restarts = 8
	}
	if o.CoarsenTo == 0 {
		o.CoarsenTo = 40
	}
	return o
}

// PartitionK partitions h into k parts by recursive bisection and
// returns the per-vertex part assignment and the cut weight. k must be
// at least 1; k == 1 returns the trivial partition.
func PartitionK(h *Hypergraph, k int, opts Options) ([]int, int64, error) {
	assign, cut, _, err := PartitionKCtx(context.Background(), h, k, opts)
	return assign, cut, err
}

// PartitionKCtx is PartitionK with graceful degradation under a
// context: a cancelled or expired context never fails the partition —
// instead the multilevel machinery skips restarts and FM refinement
// passes once the context is done, falling back to a single greedy
// initial bisection per level, so a structurally valid (if
// lower-quality) balanced partition always comes back. The returned
// bool reports whether the search was degraded by the context.
func PartitionKCtx(ctx context.Context, h *Hypergraph, k int, opts Options) ([]int, int64, bool, error) {
	if k < 1 {
		return nil, 0, false, fmt.Errorf("hypergraph: k must be >= 1, got %d", k)
	}
	opts = opts.withDefaults()
	n := h.NumVertices()
	assign := make([]int, n)
	if k == 1 || n == 0 {
		return assign, 0, false, nil
	}
	if k > n {
		return nil, 0, false, fmt.Errorf("hypergraph: k=%d exceeds vertex count %d", k, n)
	}
	span := obs.Span(opts.Trace, "partition")
	rng := rand.New(rand.NewSource(opts.Seed))
	// Recursive bisection: split [0,k) parts over the vertex set,
	// proportionally by part count.
	var recurse func(vertices []int, partLo, partHi int) error
	recurse = func(vertices []int, partLo, partHi int) error {
		if partHi-partLo == 1 {
			for _, v := range vertices {
				assign[v] = partLo
			}
			return nil
		}
		kLeft := (partHi - partLo + 1) / 2
		frac := float64(kLeft) / float64(partHi-partLo)
		sub, fromSub := induce(h, vertices)
		side, err := bisect(ctx, sub, frac, opts, rng)
		if err != nil {
			return err
		}
		var left, right []int
		for i, s := range side {
			if s == 0 {
				left = append(left, fromSub[i])
			} else {
				right = append(right, fromSub[i])
			}
		}
		if len(left) < kLeft || len(right) < (partHi-partLo)-kLeft {
			// Not enough vertices on a side to host its parts; rebalance
			// by moving the lightest vertices across.
			left, right = forceCounts(h, left, right, kLeft, (partHi-partLo)-kLeft)
		}
		if err := recurse(left, partLo, partLo+kLeft); err != nil {
			return err
		}
		return recurse(right, partLo+kLeft, partHi)
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	if err := recurse(all, 0, k); err != nil {
		return nil, 0, false, err
	}
	// Cancellation is permanent, so checking once at the end captures
	// whether any stage above ran in degraded mode.
	cut := h.CutWeight(assign)
	degraded := ctx.Err() != nil
	if opts.Trace != nil {
		if degraded {
			opts.Trace.Emit(obs.Event{Type: obs.DeadlineHit, Phase: "partition", Cause: obs.CtxCause(ctx.Err())})
		}
		span.End(0, cut)
	}
	return assign, cut, degraded, nil
}

// forceCounts moves the lightest vertices between sides until each side
// has at least its minimum count.
func forceCounts(h *Hypergraph, left, right []int, minLeft, minRight int) ([]int, []int) {
	byWeight := func(s []int) {
		sort.Slice(s, func(a, b int) bool {
			if h.VertexWeight[s[a]] != h.VertexWeight[s[b]] {
				return h.VertexWeight[s[a]] < h.VertexWeight[s[b]]
			}
			return s[a] < s[b]
		})
	}
	for len(left) < minLeft {
		byWeight(right)
		left = append(left, right[0])
		right = right[1:]
	}
	for len(right) < minRight {
		byWeight(left)
		right = append(right, left[0])
		left = left[1:]
	}
	return left, right
}

// induce builds the sub-hypergraph over the given vertices. Hyperedges
// are restricted to pins inside the set; edges with fewer than one pin
// inside vanish. Returns the sub-hypergraph and the sub-to-original
// vertex index mapping.
func induce(h *Hypergraph, vertices []int) (*Hypergraph, []int) {
	toSub := make(map[int]int, len(vertices))
	fromSub := make([]int, len(vertices))
	weights := make([]int64, len(vertices))
	for i, v := range vertices {
		toSub[v] = i
		fromSub[i] = v
		weights[i] = h.VertexWeight[v]
	}
	sub := New(weights)
	for _, e := range h.Edges {
		var pins []int
		for _, p := range e.Pins {
			if sp, ok := toSub[p]; ok {
				pins = append(pins, sp)
			}
		}
		if len(pins) >= 2 {
			sub.Edges = append(sub.Edges, Edge{Pins: pins, Weight: e.Weight})
		}
	}
	return sub, fromSub
}
