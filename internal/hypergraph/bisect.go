package hypergraph

import (
	"context"
	"math/rand"
	"sort"
)

// bisect splits h into two sides, side 0 targeting the fraction frac of
// the total vertex weight, using multilevel coarsening, randomized
// greedy initial partitions and FM refinement. It returns the per-vertex
// side (0 or 1).
//
// A done context degrades quality instead of failing: coarsening stops
// at the current level, only the first (cheap, deterministic) initial
// partition is grown, and FM refinement passes are skipped. The
// projection to the finest level always completes, so the returned side
// assignment is valid regardless of when the context fires.
func bisect(ctx context.Context, h *Hypergraph, frac float64, opts Options, rng *rand.Rand) ([]int, error) {
	n := h.NumVertices()
	if n == 0 {
		return nil, nil
	}
	if n == 1 {
		return []int{0}, nil
	}

	// Coarsening phase: heavy-edge matching until small enough.
	levels := []*Hypergraph{h}
	var maps [][]int // maps[l][v] = coarse vertex of v at level l+1
	for levels[len(levels)-1].NumVertices() > opts.CoarsenTo {
		if ctx.Err() != nil {
			break // partition at the current (coarser-than-ideal) level
		}
		cur := levels[len(levels)-1]
		coarse, vmap, shrunk := coarsen(cur, rng)
		if !shrunk {
			break
		}
		levels = append(levels, coarse)
		maps = append(maps, vmap)
	}

	// Initial partition at the coarsest level: several randomized
	// greedy growths, each refined; keep the best.
	coarsest := levels[len(levels)-1]
	targetLeft := frac * float64(h.TotalVertexWeight())
	tol := opts.Tolerance
	var bestSide []int
	var bestCut int64 = -1
	for try := 0; try < opts.Restarts; try++ {
		// Always run the first try — one greedy growth is cheap and
		// guarantees a valid bisection even under a done context.
		if try > 0 && ctx.Err() != nil {
			break
		}
		side := growInitial(coarsest, targetLeft, rng)
		fmRefine(ctx, coarsest, side, targetLeft, tol)
		cut := cutOf(coarsest, side)
		if bestCut < 0 || cut < bestCut {
			bestCut = cut
			bestSide = append(bestSide[:0], side...)
		}
	}
	side := bestSide

	// Uncoarsening: project and refine at each finer level. The
	// projection must always run to completion — the side assignment is
	// only meaningful for the finest graph — so only refinement is
	// skippable under a done context (inside fmRefine).
	for l := len(levels) - 2; l >= 0; l-- {
		fine := levels[l]
		vmap := maps[l]
		fineSide := make([]int, fine.NumVertices())
		for v := range fineSide {
			fineSide[v] = side[vmap[v]]
		}
		fmRefine(ctx, fine, fineSide, targetLeft, tol)
		side = fineSide
	}
	return side, nil
}

func cutOf(h *Hypergraph, side []int) int64 {
	var cut int64
	for _, e := range h.Edges {
		if len(e.Pins) < 2 {
			continue
		}
		first := side[e.Pins[0]]
		for _, p := range e.Pins[1:] {
			if side[p] != first {
				cut += e.Weight
				break
			}
		}
	}
	return cut
}

// coarsen performs one level of heavy-edge matching. Vertices are
// visited in random order; each unmatched vertex merges with the
// unmatched neighbor sharing the highest connectivity weight
// (sum of w(e)/(|e|-1) over shared hyperedges). Returns the coarse
// hypergraph, the fine-to-coarse map, and whether the graph shrank.
func coarsen(h *Hypergraph, rng *rand.Rand) (*Hypergraph, []int, bool) {
	n := h.NumVertices()
	// Incidence lists.
	inc := make([][]int, n)
	for ei, e := range h.Edges {
		for _, p := range e.Pins {
			inc[p] = append(inc[p], ei)
		}
	}
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	conn := make(map[int]float64)
	for _, v := range order {
		if match[v] >= 0 {
			continue
		}
		clear(conn)
		for _, ei := range inc[v] {
			e := &h.Edges[ei]
			if len(e.Pins) < 2 {
				continue
			}
			w := float64(e.Weight) / float64(len(e.Pins)-1)
			for _, u := range e.Pins {
				if u != v && match[u] < 0 {
					conn[u] += w
				}
			}
		}
		best, bestW := -1, 0.0
		for u, w := range conn {
			if w > bestW || (w == bestW && (best < 0 || u < best)) {
				best, bestW = u, w
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
		}
	}

	// Build coarse vertex numbering.
	vmap := make([]int, n)
	for i := range vmap {
		vmap[i] = -1
	}
	nc := 0
	for v := 0; v < n; v++ {
		if vmap[v] >= 0 {
			continue
		}
		vmap[v] = nc
		if m := match[v]; m >= 0 {
			vmap[m] = nc
		}
		nc++
	}
	if nc == n {
		return nil, nil, false
	}
	weights := make([]int64, nc)
	for v := 0; v < n; v++ {
		weights[vmap[v]] += h.VertexWeight[v]
	}
	coarse := New(weights)
	// Collapse edges; merge identical pin sets by summing weights.
	type key string
	merged := make(map[key]int)
	pinBuf := make([]int, 0, 16)
	for _, e := range h.Edges {
		pinBuf = pinBuf[:0]
		for _, p := range e.Pins {
			pinBuf = append(pinBuf, vmap[p])
		}
		sort.Ints(pinBuf)
		uniq := pinBuf[:0]
		for i, p := range pinBuf {
			if i == 0 || p != uniq[len(uniq)-1] {
				uniq = append(uniq, p)
			}
		}
		if len(uniq) < 2 {
			continue
		}
		kb := make([]byte, 0, len(uniq)*3)
		for _, p := range uniq {
			kb = append(kb, byte(p), byte(p>>8), byte(p>>16))
		}
		k := key(kb)
		if ei, ok := merged[k]; ok {
			coarse.Edges[ei].Weight += e.Weight
		} else {
			merged[k] = len(coarse.Edges)
			coarse.Edges = append(coarse.Edges, Edge{Pins: append([]int(nil), uniq...), Weight: e.Weight})
		}
	}
	return coarse, vmap, true
}

// growInitial builds an initial bisection by BFS-like greedy growth of
// side 0 from a random seed vertex until it reaches the target weight.
func growInitial(h *Hypergraph, targetLeft float64, rng *rand.Rand) []int {
	n := h.NumVertices()
	side := make([]int, n)
	for i := range side {
		side[i] = 1
	}
	inc := make([][]int, n)
	for ei, e := range h.Edges {
		for _, p := range e.Pins {
			inc[p] = append(inc[p], ei)
		}
	}
	var leftW int64
	visited := make([]bool, n)
	frontier := []int{rng.Intn(n)}
	visited[frontier[0]] = true
	for leftW < int64(targetLeft) {
		if len(frontier) == 0 {
			// Disconnected: seed a new random unvisited vertex.
			rest := -1
			start := rng.Intn(n)
			for off := 0; off < n; off++ {
				v := (start + off) % n
				if !visited[v] {
					rest = v
					break
				}
			}
			if rest < 0 {
				break
			}
			visited[rest] = true
			frontier = append(frontier, rest)
		}
		v := frontier[0]
		frontier = frontier[1:]
		side[v] = 0
		leftW += h.VertexWeight[v]
		for _, ei := range inc[v] {
			for _, u := range h.Edges[ei].Pins {
				if !visited[u] {
					visited[u] = true
					frontier = append(frontier, u)
				}
			}
		}
	}
	return side
}

// fmRefine runs Fiduccia–Mattheyses passes on a bisection until a pass
// yields no improvement. side is modified in place. The balance
// constraint keeps side 0's weight within tolerance of targetLeft (and
// symmetrically for side 1), while always permitting moves that improve
// balance. The context is checked only at pass boundaries — each pass
// either completes or is rolled back to its best prefix, so side is
// always left in a consistent state.
func fmRefine(ctx context.Context, h *Hypergraph, side []int, targetLeft float64, tol float64) {
	n := h.NumVertices()
	if n < 2 {
		return
	}
	total := h.TotalVertexWeight()
	targetRight := float64(total) - targetLeft
	maxLeft := int64(targetLeft * (1 + tol))
	maxRight := int64(targetRight * (1 + tol))
	inc := make([][]int, n)
	for ei, e := range h.Edges {
		for _, p := range e.Pins {
			inc[p] = append(inc[p], ei)
		}
	}
	pinCount := make([][2]int64, len(h.Edges)) // pins per side per edge

	sideWeight := func() [2]int64 {
		var w [2]int64
		for v, s := range side {
			w[s] += h.VertexWeight[v]
		}
		return w
	}

	for pass := 0; pass < 16; pass++ {
		if ctx.Err() != nil {
			return
		}
		for ei := range pinCount {
			pinCount[ei] = [2]int64{}
		}
		for ei, e := range h.Edges {
			for _, p := range e.Pins {
				pinCount[ei][side[p]]++
			}
		}
		w := sideWeight()
		gain := make([]int64, n)
		locked := make([]bool, n)
		computeGain := func(v int) int64 {
			var g int64
			s := side[v]
			o := 1 - s
			for _, ei := range inc[v] {
				e := &h.Edges[ei]
				if len(e.Pins) < 2 {
					continue
				}
				if pinCount[ei][s] == 1 {
					g += e.Weight // moving v uncuts e
				}
				if pinCount[ei][o] == 0 {
					g -= e.Weight // moving v cuts e
				}
			}
			return g
		}
		for v := 0; v < n; v++ {
			gain[v] = computeGain(v)
		}

		type move struct {
			v    int
			gain int64
		}
		var seq []move
		var cum, bestCum int64
		bestIdx := -1
		for step := 0; step < n; step++ {
			best := -1
			for v := 0; v < n; v++ {
				if locked[v] {
					continue
				}
				// Balance feasibility of moving v to the other side.
				to := 1 - side[v]
				nw := w[to] + h.VertexWeight[v]
				limit := maxRight
				if to == 0 {
					limit = maxLeft
				}
				if nw > limit && w[to] >= limit {
					continue // would worsen an already-full side
				}
				if best < 0 || gain[v] > gain[best] || (gain[v] == gain[best] && v < best) {
					best = v
				}
			}
			if best < 0 {
				break
			}
			v := best
			s := side[v]
			o := 1 - s
			locked[v] = true
			cum += gain[v]
			seq = append(seq, move{v, gain[v]})
			// Apply tentatively.
			side[v] = o
			w[s] -= h.VertexWeight[v]
			w[o] += h.VertexWeight[v]
			for _, ei := range inc[v] {
				pinCount[ei][s]--
				pinCount[ei][o]++
			}
			// Recompute gains of neighbors (small graphs: recompute all
			// unlocked pins of v's edges).
			for _, ei := range inc[v] {
				for _, u := range h.Edges[ei].Pins {
					if !locked[u] {
						gain[u] = computeGain(u)
					}
				}
			}
			if cum > bestCum {
				bestCum = cum
				bestIdx = len(seq) - 1
			}
		}
		// Roll back moves after the best prefix.
		for i := len(seq) - 1; i > bestIdx; i-- {
			v := seq[i].v
			side[v] = 1 - side[v]
		}
		if bestCum <= 0 {
			return
		}
	}
}
