package hypergraph

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"
)

func uniform(n int, w int64) []int64 {
	ws := make([]int64, n)
	for i := range ws {
		ws[i] = w
	}
	return ws
}

func TestAddEdgeValidation(t *testing.T) {
	h := New(uniform(4, 1))
	if err := h.AddEdge([]int{0, 5}, 1); err == nil {
		t.Error("accepted out-of-range pin")
	}
	if err := h.AddEdge([]int{0, 1}, -1); err == nil {
		t.Error("accepted negative weight")
	}
	if err := h.AddEdge([]int{0, 1, 1, 0}, 2); err != nil {
		t.Fatal(err)
	}
	if got := len(h.Edges[0].Pins); got != 2 {
		t.Errorf("duplicate pins not deduplicated: %v", h.Edges[0].Pins)
	}
}

func TestCutWeight(t *testing.T) {
	h := New(uniform(4, 1))
	mustAdd(t, h, []int{0, 1}, 3)
	mustAdd(t, h, []int{2, 3}, 5)
	mustAdd(t, h, []int{0, 3}, 7)
	assign := []int{0, 0, 1, 1}
	if got := h.CutWeight(assign); got != 7 {
		t.Errorf("CutWeight = %d, want 7", got)
	}
	if got := h.CutWeight([]int{0, 0, 0, 0}); got != 0 {
		t.Errorf("CutWeight all-same = %d, want 0", got)
	}
}

func mustAdd(t *testing.T, h *Hypergraph, pins []int, w int64) {
	t.Helper()
	if err := h.AddEdge(pins, w); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionKTrivial(t *testing.T) {
	h := New(uniform(5, 1))
	assign, cut, err := PartitionK(h, 1, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cut != 0 {
		t.Errorf("k=1 cut = %d", cut)
	}
	for _, a := range assign {
		if a != 0 {
			t.Errorf("k=1 assign = %v", assign)
		}
	}
	if _, _, err := PartitionK(h, 0, Options{}); err == nil {
		t.Error("accepted k=0")
	}
	if _, _, err := PartitionK(h, 6, Options{}); err == nil {
		t.Error("accepted k > n")
	}
}

func TestPartitionObviousClusters(t *testing.T) {
	// Two 5-cliques joined by one light edge: bisection must cut only
	// the light edge.
	h := New(uniform(10, 1))
	for _, grp := range [][]int{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}} {
		for i := 0; i < len(grp); i++ {
			for j := i + 1; j < len(grp); j++ {
				mustAdd(t, h, []int{grp[i], grp[j]}, 10)
			}
		}
	}
	mustAdd(t, h, []int{4, 5}, 1)
	assign, cut, err := PartitionK(h, 2, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cut != 1 {
		t.Errorf("cut = %d, want 1 (assign %v)", cut, assign)
	}
	for i := 1; i < 5; i++ {
		if assign[i] != assign[0] {
			t.Errorf("cluster A split: %v", assign)
		}
		if assign[5+i] != assign[5] {
			t.Errorf("cluster B split: %v", assign)
		}
	}
	if assign[0] == assign[5] {
		t.Errorf("clusters not separated: %v", assign)
	}
}

func TestPartitionRingLocality(t *testing.T) {
	// A weighted ring: the 4-way partition should cut only ~4 edges.
	n := 32
	h := New(uniform(n, 10))
	for i := 0; i < n; i++ {
		mustAdd(t, h, []int{i, (i + 1) % n}, 100)
	}
	assign, cut, err := PartitionK(h, 4, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cut > 600 {
		t.Errorf("ring cut = %d, want <= 600 (6 edges)", cut)
	}
	counts := map[int]int{}
	for _, a := range assign {
		counts[a]++
	}
	if len(counts) != 4 {
		t.Fatalf("expected 4 parts, got %v", counts)
	}
	for part, c := range counts {
		if c < 4 || c > 12 {
			t.Errorf("part %d badly unbalanced: %d of %d vertices", part, c, n)
		}
	}
}

func TestPartitionBalance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 12 + rng.Intn(24)
		weights := make([]int64, n)
		var total int64
		for i := range weights {
			weights[i] = int64(1 + rng.Intn(50))
			total += weights[i]
		}
		h := New(weights)
		for e := 0; e < n*2; e++ {
			k := 2 + rng.Intn(3)
			pins := make([]int, k)
			for j := range pins {
				pins[j] = rng.Intn(n)
			}
			if err := h.AddEdge(pins, int64(1+rng.Intn(9))); err != nil {
				return false
			}
		}
		for _, k := range []int{2, 4} {
			assign, cut, err := PartitionK(h, k, Options{Seed: seed})
			if err != nil {
				return false
			}
			if cut != h.CutWeight(assign) {
				return false
			}
			partW := make([]int64, k)
			for v, a := range assign {
				if a < 0 || a >= k {
					return false
				}
				partW[a] += weights[v]
			}
			// Every part non-empty and no part above ~75% of the total
			// (loose sanity bound; exact balance is tolerance-driven
			// and heavy single vertices can force imbalance).
			for _, w := range partW {
				if w <= 0 && k <= n {
					return false
				}
				if float64(w) > 0.80*float64(total) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	h := New(uniform(20, 3))
	rng := rand.New(rand.NewSource(8))
	for e := 0; e < 50; e++ {
		mustAdd(t, h, []int{rng.Intn(20), rng.Intn(20), rng.Intn(20)}, int64(1+rng.Intn(5)))
	}
	a1, c1, err := PartitionK(h, 4, Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	a2, c2, err := PartitionK(h, 4, Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatalf("cut differs across identical seeds: %d vs %d", c1, c2)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("assignment differs at %d", i)
		}
	}
}

func TestPartitionKEqualsN(t *testing.T) {
	// k == n: every vertex in its own part; every multi-pin edge cut.
	h := New(uniform(5, 2))
	mustAdd(t, h, []int{0, 1}, 3)
	mustAdd(t, h, []int{2, 3, 4}, 4)
	assign, cut, err := PartitionK(h, 5, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, a := range assign {
		if seen[a] {
			t.Fatalf("part %d reused in %v", a, assign)
		}
		seen[a] = true
	}
	if cut != 7 {
		t.Errorf("cut = %d, want 7 (all edges)", cut)
	}
}

func TestPartitionSingleVertexParts(t *testing.T) {
	// Heavily skewed weights: a single huge vertex must still land in
	// exactly one part and the partition must stay a partition.
	h := New([]int64{1000, 1, 1, 1, 1, 1})
	for i := 1; i < 6; i++ {
		mustAdd(t, h, []int{0, i}, 1)
	}
	assign, _, err := PartitionK(h, 2, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, a := range assign {
		counts[a]++
	}
	if len(counts) != 2 {
		t.Errorf("parts = %v", counts)
	}
}

func TestCoarsenShrinks(t *testing.T) {
	n := 100
	h := New(uniform(n, 1))
	rng := rand.New(rand.NewSource(4))
	for e := 0; e < 300; e++ {
		mustAdd(t, h, []int{rng.Intn(n), rng.Intn(n)}, 1)
	}
	coarse, vmap, shrunk := coarsen(h, rng)
	if !shrunk {
		t.Fatal("coarsen did not shrink a dense graph")
	}
	if coarse.NumVertices() >= n {
		t.Errorf("coarse has %d vertices", coarse.NumVertices())
	}
	if coarse.TotalVertexWeight() != h.TotalVertexWeight() {
		t.Errorf("vertex weight not conserved: %d vs %d", coarse.TotalVertexWeight(), h.TotalVertexWeight())
	}
	for v, cv := range vmap {
		if cv < 0 || cv >= coarse.NumVertices() {
			t.Fatalf("vmap[%d] = %d out of range", v, cv)
		}
	}
}

func TestCoarsenNoEdges(t *testing.T) {
	h := New(uniform(10, 1))
	rng := rand.New(rand.NewSource(1))
	_, _, shrunk := coarsen(h, rng)
	if shrunk {
		t.Error("coarsen matched vertices with no edges")
	}
}

func TestMultilevelPathLargeGraph(t *testing.T) {
	// Force the coarsening path (n > CoarsenTo) on a graph with known
	// cluster structure.
	n := 200
	h := New(uniform(n, 1))
	rng := rand.New(rand.NewSource(5))
	// Two clusters of 100, dense inside, sparse across.
	for e := 0; e < 2000; e++ {
		c := rng.Intn(2) * 100
		mustAdd(t, h, []int{c + rng.Intn(100), c + rng.Intn(100)}, 10)
	}
	for e := 0; e < 20; e++ {
		mustAdd(t, h, []int{rng.Intn(100), 100 + rng.Intn(100)}, 1)
	}
	assign, cut, err := PartitionK(h, 2, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if cut > 100 {
		t.Errorf("multilevel cut = %d, want close to 20 (the cross edges)", cut)
	}
	agree := 0
	for i := 0; i < 100; i++ {
		if assign[i] == assign[0] {
			agree++
		}
	}
	if agree < 90 {
		t.Errorf("cluster A scattered: %d/100 in dominant part", agree)
	}
}

func TestFMImprovesBadStart(t *testing.T) {
	// fmRefine must strictly improve a deliberately bad bisection of a
	// two-cluster graph.
	n := 20
	h := New(uniform(n, 1))
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			mustAdd(t, h, []int{i, j}, 5)
			mustAdd(t, h, []int{10 + i, 10 + j}, 5)
		}
	}
	mustAdd(t, h, []int{0, 10}, 1)
	// Interleaved start: every edge inside a cluster is cut.
	side := make([]int, n)
	for i := range side {
		side[i] = i % 2
	}
	before := cutOf(h, side)
	fmRefine(context.Background(), h, side, float64(n)/2, 0.10)
	after := cutOf(h, side)
	if after >= before {
		t.Errorf("FM did not improve: %d -> %d", before, after)
	}
	if after > 1 {
		t.Errorf("FM stuck at cut %d, optimum is 1", after)
	}
}

func TestInduceSubHypergraph(t *testing.T) {
	h := New([]int64{1, 2, 3, 4, 5})
	mustAdd(t, h, []int{0, 1, 2}, 2)
	mustAdd(t, h, []int{3, 4}, 3)
	mustAdd(t, h, []int{0, 4}, 4)
	sub, fromSub := induce(h, []int{0, 1, 2})
	if sub.NumVertices() != 3 {
		t.Fatalf("sub vertices = %d", sub.NumVertices())
	}
	if len(sub.Edges) != 1 || sub.Edges[0].Weight != 2 {
		t.Errorf("sub edges = %v (cross and external edges must vanish)", sub.Edges)
	}
	if sub.TotalVertexWeight() != 6 {
		t.Errorf("sub weight = %d, want 1+2+3", sub.TotalVertexWeight())
	}
	for i, orig := range fromSub {
		if h.VertexWeight[orig] != sub.VertexWeight[i] {
			t.Errorf("fromSub[%d] = %d weight mismatch", i, orig)
		}
	}
}
