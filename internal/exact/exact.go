// Package exact provides a brute-force reference optimizer for Problem
// P_SI_opt on tiny SOCs: it enumerates every partition of the cores
// into TestRails and every distribution of the TAM width budget over
// the rails, evaluating the full objective (InTest time plus the
// Algorithm 1 SI schedule) for each candidate. Exponential in the core
// count — the package refuses SOCs with more than 8 cores — it exists
// to bound the optimality gap of the heuristic TAM_Optimization engine
// in tests and ablations, not for production use.
package exact

import (
	"context"
	"fmt"

	"sitam/internal/core"
	"sitam/internal/sischedule"
	"sitam/internal/soc"
	"sitam/internal/tam"
	"sitam/internal/wrapper"
)

// MaxCores bounds the instance size Optimize accepts. Bell(8)·C(W-1,7)
// evaluations is already hundreds of thousands at W=12.
const MaxCores = 8

// Result is the optimum found by exhaustive search.
type Result struct {
	Architecture *tam.Architecture
	Objective    int64 // T_soc = T_in + T_si
	Evaluated    int   // number of candidate architectures scored
}

// Optimize exhaustively solves P_SI_opt for s at total width wmax over
// the given SI test groups. Pass no groups to optimize InTest time
// only (the TR-Architect objective). It is OptimizeCtx without
// cancellation.
func Optimize(s *soc.SOC, wmax int, groups []*sischedule.Group, m sischedule.Model) (*Result, error) {
	return OptimizeCtx(context.Background(), s, wmax, groups, m)
}

// OptimizeCtx is Optimize under a context. Cancellation or an expired
// deadline aborts the enumeration with an error wrapping ctx.Err():
// unlike the heuristic engine there is no degraded result, because a
// partially enumerated search cannot certify an optimum.
func OptimizeCtx(ctx context.Context, s *soc.SOC, wmax int, groups []*sischedule.Group, m sischedule.Model) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := s.NumCores()
	if n > MaxCores {
		return nil, fmt.Errorf("exact: %d cores exceeds the limit of %d", n, MaxCores)
	}
	if wmax < 1 {
		return nil, fmt.Errorf("exact: wmax must be >= 1, got %d", wmax)
	}
	times, err := wrapper.NewTimeTable(s, wmax)
	if err != nil {
		return nil, err
	}
	ids := make([]int, n)
	for i, c := range s.Cores() {
		ids[i] = c.ID
	}

	best := &Result{}
	// Enumerate set partitions of the cores via restricted growth
	// strings: block[i] in [0, max(block[0..i-1])+1].
	block := make([]int, n)
	var enumerate func(i, maxBlock int) error
	enumerate = func(i, maxBlock int) error {
		if i == n {
			// One check per complete partition: the width enumeration and
			// scoring below it are the expensive part of each node.
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("exact: search interrupted after %d candidates: %w", best.Evaluated, err)
			}
			k := maxBlock + 1
			if k > wmax {
				return nil // not enough wires for one per rail
			}
			railCores := make([][]int, k)
			for v, b := range block {
				railCores[b] = append(railCores[b], ids[v])
			}
			return distributeWidths(s, times, railCores, wmax, groups, m, best)
		}
		for b := 0; b <= maxBlock+1; b++ {
			block[i] = b
			nb := maxBlock
			if b > maxBlock {
				nb = b
			}
			if err := enumerate(i+1, nb); err != nil {
				return err
			}
		}
		return nil
	}
	if err := enumerate(0, -1); err != nil {
		return nil, err
	}
	if best.Architecture == nil {
		return nil, fmt.Errorf("exact: no feasible architecture at wmax=%d", wmax)
	}
	return best, nil
}

// distributeWidths enumerates compositions of wmax into len(railCores)
// positive parts and scores each resulting architecture.
func distributeWidths(s *soc.SOC, times *wrapper.TimeTable, railCores [][]int, wmax int,
	groups []*sischedule.Group, m sischedule.Model, best *Result) error {
	k := len(railCores)
	widths := make([]int, k)
	var compose func(i, left int) error
	compose = func(i, left int) error {
		if i == k-1 {
			widths[i] = left
			return score(s, times, railCores, widths, groups, m, best)
		}
		// Leave at least 1 wire for each remaining rail. Widths above
		// what any core can use still matter for SI shift time, so the
		// full range is enumerated.
		for w := 1; w <= left-(k-1-i); w++ {
			widths[i] = w
			if err := compose(i+1, left-w); err != nil {
				return err
			}
		}
		return nil
	}
	return compose(0, wmax)
}

func score(s *soc.SOC, times *wrapper.TimeTable, railCores [][]int, widths []int,
	groups []*sischedule.Group, m sischedule.Model, best *Result) error {
	a := tam.New(s, times)
	for i, cores := range railCores {
		a.AddRail(cores, widths[i])
	}
	obj := a.InTestTime()
	if len(groups) > 0 {
		sched, err := sischedule.ScheduleSITest(a, groups, m)
		if err != nil {
			return err
		}
		obj += sched.TotalSI
	}
	best.Evaluated++
	if best.Architecture == nil || obj < best.Objective {
		best.Architecture = a
		best.Objective = obj
	}
	return nil
}

// Gap runs both the exact search and the heuristic engine on the same
// instance and returns (heuristic-optimal)/optimal. Intended for tests
// and ablation reporting.
func Gap(s *soc.SOC, wmax int, groups []*sischedule.Group, m sischedule.Model) (float64, error) {
	opt, err := Optimize(s, wmax, groups, m)
	if err != nil {
		return 0, err
	}
	var eval core.Evaluator = core.InTestEvaluator{}
	if len(groups) > 0 {
		eval = &core.SIEvaluator{Groups: groups, Model: m}
	}
	eng, err := core.NewEngine(s, wmax, eval)
	if err != nil {
		return 0, err
	}
	_, heur, err := eng.Optimize()
	if err != nil {
		return 0, err
	}
	if heur < opt.Objective {
		return 0, fmt.Errorf("exact: heuristic %d beat the exhaustive optimum %d — enumeration bug", heur, opt.Objective)
	}
	return float64(heur-opt.Objective) / float64(opt.Objective), nil
}
