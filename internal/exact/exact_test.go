package exact

import (
	"math/rand"
	"testing"

	"sitam/internal/sischedule"
	"sitam/internal/soc"
)

func tinySOC(rng *rand.Rand, n int) *soc.SOC {
	s := &soc.SOC{Name: "tiny", BusWidth: 8}
	for id := 1; id <= n; id++ {
		c := &soc.Core{
			ID:       id,
			Inputs:   1 + rng.Intn(10),
			Outputs:  1 + rng.Intn(10),
			Patterns: 1 + rng.Intn(60),
		}
		for j := rng.Intn(3); j > 0; j-- {
			c.ScanChains = append(c.ScanChains, 1+rng.Intn(40))
		}
		s.CoreList = append(s.CoreList, c)
	}
	return s
}

func tinyGroups(rng *rand.Rand, s *soc.SOC) []*sischedule.Group {
	var groups []*sischedule.Group
	k := 1 + rng.Intn(3)
	for gi := 0; gi < k; gi++ {
		var cores []int
		for _, c := range s.Cores() {
			if rng.Intn(2) == 0 {
				cores = append(cores, c.ID)
			}
		}
		if len(cores) == 0 {
			cores = []int{s.Cores()[0].ID}
		}
		groups = append(groups, &sischedule.Group{
			Name:     "g",
			Cores:    cores,
			Patterns: int64(1 + rng.Intn(200)),
		})
	}
	return groups
}

func TestExactRejectsLargeInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := tinySOC(rng, 9)
	if _, err := Optimize(s, 4, nil, sischedule.Model{}); err == nil {
		t.Error("accepted 9 cores")
	}
	s4 := tinySOC(rng, 4)
	if _, err := Optimize(s4, 0, nil, sischedule.Model{}); err == nil {
		t.Error("accepted wmax=0")
	}
}

func TestExactSingleCore(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := tinySOC(rng, 1)
	res, err := Optimize(s, 3, nil, sischedule.Model{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Architecture.Rails) != 1 || res.Architecture.Rails[0].Width != 3 {
		t.Errorf("single core optimum = %v", res.Architecture)
	}
}

func TestExactFindsObviousOptimum(t *testing.T) {
	// Two identical cores, width 2: the optimum is one rail each.
	s := &soc.SOC{Name: "pair", BusWidth: 4, CoreList: []*soc.Core{
		{ID: 1, Inputs: 2, Outputs: 2, ScanChains: []int{10}, Patterns: 10},
		{ID: 2, Inputs: 2, Outputs: 2, ScanChains: []int{10}, Patterns: 10},
	}}
	res, err := Optimize(s, 2, nil, sischedule.Model{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Architecture.Rails) != 2 {
		t.Errorf("optimum uses %d rails, want 2:\n%s", len(res.Architecture.Rails), res.Architecture)
	}
	// Serializing both on one 2-wire rail costs ~2x; parallel 1+1 is
	// the max of the two.
	if res.Objective >= int64(2*s.CoreList[0].Patterns*10) {
		t.Errorf("objective %d looks serialized", res.Objective)
	}
}

func TestHeuristicGapInTestOnly(t *testing.T) {
	worst := 0.0
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := tinySOC(rng, 3+rng.Intn(3))
		wmax := 2 + rng.Intn(5)
		gap, err := Gap(s, wmax, nil, sischedule.Model{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if gap > worst {
			worst = gap
		}
	}
	// The heuristic engine should be within 15% of optimal on tiny
	// InTest-only instances (it is usually exact).
	if worst > 0.15 {
		t.Errorf("worst heuristic gap %.1f%% exceeds 15%%", 100*worst)
	}
	t.Logf("worst InTest-only heuristic gap over 15 instances: %.2f%%", 100*worst)
}

func TestHeuristicGapWithSI(t *testing.T) {
	worst := 0.0
	for seed := int64(20); seed < 32; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := tinySOC(rng, 3+rng.Intn(3))
		groups := tinyGroups(rng, s)
		wmax := 2 + rng.Intn(4)
		gap, err := Gap(s, wmax, groups, sischedule.DefaultModel())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if gap > worst {
			worst = gap
		}
	}
	// The combined objective is lumpier; allow 20%.
	if worst > 0.20 {
		t.Errorf("worst SI-aware heuristic gap %.1f%% exceeds 20%%", 100*worst)
	}
	t.Logf("worst SI-aware heuristic gap over 12 instances: %.2f%%", 100*worst)
}

func TestExactEvaluationCount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := tinySOC(rng, 3)
	res, err := Optimize(s, 3, nil, sischedule.Model{})
	if err != nil {
		t.Fatal(err)
	}
	// 3 cores, W=3: partitions {1}{2}{3} (1 comp), {12}{3} x3 (each 2
	// comps), {123} (1 comp of 1 part... widths 1..3 -> 3... wait:
	// compositions of 3 into 1 part = 1). Partition widths:
	//   k=3: compositions of 3 into 3 positive parts = 1; 1 partition.
	//   k=2: compositions = 2; 3 partitions.
	//   k=1: compositions = 1; 1 partition.
	// Total = 1*1 + 3*2 + 1*1 = 8.
	if res.Evaluated != 8 {
		t.Errorf("evaluated %d candidates, want 8", res.Evaluated)
	}
}
