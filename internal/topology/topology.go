// Package topology models core-external interconnect netlists of an SOC
// (the arbitrary topologies of the paper's Fig. 1): point-to-point nets
// and shared-bus nets between core terminals, together with the
// crosstalk coupling neighborhoods that determine which nets aggress
// which victims.
//
// From a topology, deterministic test sets for the two fault models of
// Section 2 can be synthesized: the maximal-aggressor (MA) model of
// Cuviello et al. (6 vector pairs per victim, all neighborhood nets
// acting as aggressors in unison) and the reduced multiple-transition
// (MT) model of Tehranipour et al. (every aggressor transition
// combination within a locality window of k nets on each side,
// N·2^(2k+2) patterns). The generated patterns feed the same compaction
// and scheduling pipeline as the randomized generator in package
// sifault.
package topology

import (
	"fmt"
	"math/rand"

	"sitam/internal/sifault"
	"sitam/internal/soc"
)

// Terminal identifies one wrapper output cell: output terminal Index of
// core Core.
type Terminal struct {
	Core  int
	Index int
}

// Net is one core-external interconnect: a driving terminal, one or
// more receiving cores, and optionally a shared bus line it is routed
// over.
type Net struct {
	// Driver is the WOC launching transitions onto the net.
	Driver Terminal

	// ReceiverCores lists the cores whose inputs the net fans out to.
	ReceiverCores []int

	// BusLine is the shared functional bus line the net occupies, or
	// -1 for dedicated point-to-point routing.
	BusLine int

	// Track is the net's position in the routing channel; nets with
	// nearby tracks couple capacitively and aggress one another.
	Track int
}

// Topology is an SOC interconnect netlist.
type Topology struct {
	SOC  *soc.SOC
	Nets []Net
}

// Validate reports the first structural problem, if any.
func (t *Topology) Validate() error {
	if len(t.Nets) == 0 {
		return fmt.Errorf("topology: no nets")
	}
	seen := make(map[Terminal]bool, len(t.Nets))
	for i, n := range t.Nets {
		c := t.SOC.CoreByID(n.Driver.Core)
		if c == nil {
			return fmt.Errorf("topology: net %d driven by unknown core %d", i, n.Driver.Core)
		}
		if n.Driver.Index < 0 || n.Driver.Index >= c.WOC() {
			return fmt.Errorf("topology: net %d driver index %d outside core %d's %d WOCs",
				i, n.Driver.Index, n.Driver.Core, c.WOC())
		}
		if seen[n.Driver] {
			return fmt.Errorf("topology: terminal %v drives two nets", n.Driver)
		}
		seen[n.Driver] = true
		if len(n.ReceiverCores) == 0 {
			return fmt.Errorf("topology: net %d has no receivers", i)
		}
		for _, rc := range n.ReceiverCores {
			if t.SOC.CoreByID(rc) == nil {
				return fmt.Errorf("topology: net %d received by unknown core %d", i, rc)
			}
		}
		if n.BusLine >= t.SOC.BusWidth {
			return fmt.Errorf("topology: net %d on bus line %d of a %d-bit bus", i, n.BusLine, t.SOC.BusWidth)
		}
	}
	return nil
}

// Neighbors returns the indices of the nets within the locality window
// k of net i: the nets whose Track differs by at most k, excluding i
// itself. These are i's aggressor candidates.
func (t *Topology) Neighbors(i, k int) []int {
	var out []int
	ti := t.Nets[i].Track
	for j, n := range t.Nets {
		if j == i {
			continue
		}
		d := n.Track - ti
		if d < 0 {
			d = -d
		}
		if d <= k {
			out = append(out, j)
		}
	}
	return out
}

// RandomConfig parameterizes Random.
type RandomConfig struct {
	// FanOut is how many other cores each core sends data to (the
	// Section 2 example uses 2).
	FanOut int

	// Width is the number of nets per core-to-core connection (the
	// Section 2 example connects cores over a 32-bit bus).
	Width int

	// BusFraction is the fraction of connections routed over the
	// shared bus rather than point-to-point.
	BusFraction float64
}

// Random builds a random but structurally plausible topology: every
// core sends Width-bit data to FanOut other cores; connections are
// assigned consecutive routing tracks, so each net's neighborhood is
// dominated by its own bundle plus the bundles routed beside it.
func Random(s *soc.SOC, cfg RandomConfig, seed int64) (*Topology, error) {
	if cfg.FanOut < 1 || cfg.Width < 1 {
		return nil, fmt.Errorf("topology: FanOut and Width must be >= 1, got %d and %d", cfg.FanOut, cfg.Width)
	}
	if s.NumCores() < 2 {
		return nil, fmt.Errorf("topology: need at least 2 cores")
	}
	rng := rand.New(rand.NewSource(seed))
	topo := &Topology{SOC: s}
	track := 0
	nextFree := make(map[int]int, s.NumCores()) // core ID -> next unused WOC index
	for _, src := range s.Cores() {
		for f := 0; f < cfg.FanOut; f++ {
			// Pick a destination core other than src.
			others := make([]int, 0, s.NumCores()-1)
			for _, c := range s.Cores() {
				if c.ID != src.ID {
					others = append(others, c.ID)
				}
			}
			dst := others[rng.Intn(len(others))]
			onBus := rng.Float64() < cfg.BusFraction && s.BusWidth > 0
			for b := 0; b < cfg.Width; b++ {
				idx := nextFree[src.ID]
				if idx >= src.WOC() {
					break // core out of output terminals; connection truncated
				}
				nextFree[src.ID]++
				line := -1
				if onBus {
					line = b % s.BusWidth
				}
				topo.Nets = append(topo.Nets, Net{
					Driver:        Terminal{Core: src.ID, Index: idx},
					ReceiverCores: []int{dst},
					BusLine:       line,
					Track:         track,
				})
				track++
			}
		}
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	return topo, nil
}

// position maps a terminal to its global WOC position.
func position(sp *sifault.Space, t Terminal) int32 {
	start, n := sp.Range(t.Core)
	if t.Index >= n {
		panic(fmt.Sprintf("topology: terminal %v outside core range", t))
	}
	return int32(start + t.Index)
}

// maKinds mirrors the six MA fault types (see package sifault).
var maKinds = [6]struct{ victim, aggressor sifault.Symbol }{
	{sifault.Zero, sifault.Rise},
	{sifault.One, sifault.Fall},
	{sifault.Rise, sifault.Fall},
	{sifault.Fall, sifault.Rise},
	{sifault.Rise, sifault.Rise},
	{sifault.Fall, sifault.Fall},
}

// MAPatterns synthesizes the maximal-aggressor test set for the
// topology with locality window k: for every net (victim), six vector
// pairs in which every neighborhood net transitions in unison. The
// returned pattern count is exactly 6·len(Nets).
func MAPatterns(t *Topology, k int) ([]*sifault.Pattern, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	sp := sifault.NewSpace(t.SOC)
	patterns := make([]*sifault.Pattern, 0, 6*len(t.Nets))
	for i, victim := range t.Nets {
		vPos := position(sp, victim.Driver)
		neighbors := t.Neighbors(i, k)
		for _, kind := range maKinds {
			p := &sifault.Pattern{
				VictimPos:  vPos,
				VictimCore: int32(victim.Driver.Core),
				Weight:     1,
			}
			set := map[int32]sifault.Symbol{vPos: kind.victim}
			for _, j := range neighbors {
				aPos := position(sp, t.Nets[j].Driver)
				if _, taken := set[aPos]; !taken {
					set[aPos] = kind.aggressor
				}
			}
			p.Care = caresFromMap(set)
			p.Bus = busFromNets(t, append(neighbors, i))
			patterns = append(patterns, p)
		}
	}
	return patterns, nil
}

// ReducedMTPatterns synthesizes the reduced multiple-transition test
// set with locality factor k: for every net, every combination of
// {rise, fall} transitions on the up-to-2k neighborhood nets, crossed
// with the four victim states {0, 1, rise, fall} — bounded by
// N·2^(2k+2) patterns in total, exactly matching the model's count when
// every net has a full window. maxPatterns caps the output (0 = no
// cap); generation stops once the cap is reached.
func ReducedMTPatterns(t *Topology, k int, maxPatterns int) ([]*sifault.Pattern, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if k < 0 || k > 14 {
		return nil, fmt.Errorf("topology: locality factor k=%d out of range [0,14]", k)
	}
	sp := sifault.NewSpace(t.SOC)
	var patterns []*sifault.Pattern
	victimStates := []sifault.Symbol{sifault.Zero, sifault.One, sifault.Rise, sifault.Fall}
	for i, victim := range t.Nets {
		vPos := position(sp, victim.Driver)
		neighbors := t.Neighbors(i, k)
		if len(neighbors) > 2*k {
			neighbors = neighbors[:2*k]
		}
		for _, vSym := range victimStates {
			for mask := 0; mask < 1<<len(neighbors); mask++ {
				set := map[int32]sifault.Symbol{vPos: vSym}
				for bi, j := range neighbors {
					sym := sifault.Rise
					if mask&(1<<bi) != 0 {
						sym = sifault.Fall
					}
					aPos := position(sp, t.Nets[j].Driver)
					if _, taken := set[aPos]; !taken {
						set[aPos] = sym
					}
				}
				p := &sifault.Pattern{
					VictimPos:  vPos,
					VictimCore: int32(victim.Driver.Core),
					Weight:     1,
					Care:       caresFromMap(set),
					Bus:        busFromNets(t, append(append([]int(nil), neighbors...), i)),
				}
				patterns = append(patterns, p)
				if maxPatterns > 0 && len(patterns) >= maxPatterns {
					return patterns, nil
				}
			}
		}
	}
	return patterns, nil
}

func caresFromMap(set map[int32]sifault.Symbol) []sifault.Care {
	care := make([]sifault.Care, 0, len(set))
	for pos, sym := range set {
		care = append(care, sifault.Care{Pos: pos, Sym: sym})
	}
	sortCares(care)
	return care
}

func sortCares(care []sifault.Care) {
	for i := 1; i < len(care); i++ {
		for j := i; j > 0 && care[j].Pos < care[j-1].Pos; j-- {
			care[j], care[j-1] = care[j-1], care[j]
		}
	}
}

// busFromNets collects the bus lines occupied by the given nets, each
// attributed to its driving core. Nets sharing a bus line from
// different cores keep the first driver: within one pattern the line is
// physically driven once.
func busFromNets(t *Topology, netIdx []int) []sifault.BusUse {
	byLine := map[int32]int32{}
	for _, i := range netIdx {
		n := t.Nets[i]
		if n.BusLine < 0 {
			continue
		}
		line := int32(n.BusLine)
		if _, ok := byLine[line]; !ok {
			byLine[line] = int32(n.Driver.Core)
		}
	}
	if len(byLine) == 0 {
		return nil
	}
	out := make([]sifault.BusUse, 0, len(byLine))
	for line, driver := range byLine {
		out = append(out, sifault.BusUse{Line: line, Driver: driver})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Line < out[j-1].Line; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
