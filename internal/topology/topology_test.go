package topology

import (
	"testing"

	"sitam/internal/compaction"
	"sitam/internal/sifault"
	"sitam/internal/soc"
)

func busSOC(t *testing.T, cores int) *soc.SOC {
	t.Helper()
	s := &soc.SOC{Name: "bus", BusWidth: 32}
	for id := 1; id <= cores; id++ {
		s.CoreList = append(s.CoreList, &soc.Core{
			ID: id, Inputs: 80, Outputs: 80, ScanChains: []int{20}, Patterns: 10,
		})
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRandomTopologyValid(t *testing.T) {
	s := busSOC(t, 10)
	topo, err := Random(s, RandomConfig{FanOut: 2, Width: 32, BusFraction: 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Section 2: 10 cores, fan-out 2, 32-bit connections -> 640 nets.
	if len(topo.Nets) != 640 {
		t.Errorf("nets = %d, want 640", len(topo.Nets))
	}
	if err := topo.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRandomTopologyErrors(t *testing.T) {
	s := busSOC(t, 3)
	if _, err := Random(s, RandomConfig{FanOut: 0, Width: 8}, 1); err == nil {
		t.Error("accepted FanOut=0")
	}
	one := busSOC(t, 1)
	if _, err := Random(one, RandomConfig{FanOut: 1, Width: 8}, 1); err == nil {
		t.Error("accepted single-core SOC")
	}
}

func TestValidateCatchesBadNets(t *testing.T) {
	s := busSOC(t, 2)
	cases := map[string]*Topology{
		"empty":          {SOC: s},
		"unknown driver": {SOC: s, Nets: []Net{{Driver: Terminal{Core: 9, Index: 0}, ReceiverCores: []int{1}, BusLine: -1}}},
		"driver index":   {SOC: s, Nets: []Net{{Driver: Terminal{Core: 1, Index: 999}, ReceiverCores: []int{2}, BusLine: -1}}},
		"no receivers":   {SOC: s, Nets: []Net{{Driver: Terminal{Core: 1, Index: 0}, BusLine: -1}}},
		"bad bus line":   {SOC: s, Nets: []Net{{Driver: Terminal{Core: 1, Index: 0}, ReceiverCores: []int{2}, BusLine: 77}}},
		"double driver": {SOC: s, Nets: []Net{
			{Driver: Terminal{Core: 1, Index: 0}, ReceiverCores: []int{2}, BusLine: -1},
			{Driver: Terminal{Core: 1, Index: 0}, ReceiverCores: []int{2}, BusLine: -1},
		}},
	}
	for name, topo := range cases {
		if err := topo.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestNeighborsWindow(t *testing.T) {
	s := busSOC(t, 2)
	topo := &Topology{SOC: s}
	for i := 0; i < 10; i++ {
		topo.Nets = append(topo.Nets, Net{
			Driver: Terminal{Core: 1 + i%2, Index: i / 2}, ReceiverCores: []int{2 - i%2}, BusLine: -1, Track: i,
		})
	}
	nb := topo.Neighbors(5, 2)
	want := []int{3, 4, 6, 7}
	if len(nb) != len(want) {
		t.Fatalf("Neighbors(5,2) = %v, want %v", nb, want)
	}
	for i := range nb {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors(5,2) = %v, want %v", nb, want)
		}
	}
	if got := topo.Neighbors(0, 0); len(got) != 0 {
		t.Errorf("Neighbors(0,0) = %v, want none", got)
	}
}

func TestMAPatternCount(t *testing.T) {
	s := busSOC(t, 10)
	topo, err := Random(s, RandomConfig{FanOut: 2, Width: 32, BusFraction: 0.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	patterns, err := MAPatterns(topo, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 6 per victim net: the MA model's 6N (Section 2: 3840 for N=640).
	if got, want := len(patterns), 6*len(topo.Nets); got != want {
		t.Errorf("MA patterns = %d, want %d", got, want)
	}
	if int64(len(patterns)) != sifault.MACount(len(topo.Nets)) {
		t.Errorf("count disagrees with sifault.MACount")
	}
	sp := sifault.NewSpace(s)
	for i, p := range patterns {
		if err := p.Validate(sp); err != nil {
			t.Fatalf("pattern %d: %v", i, err)
		}
	}
}

func TestMAPatternsAggressorsUnison(t *testing.T) {
	s := busSOC(t, 4)
	topo, err := Random(s, RandomConfig{FanOut: 1, Width: 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	patterns, err := MAPatterns(topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range patterns {
		// All aggressor symbols in an MA pattern are identical.
		var aggr sifault.Symbol = sifault.X
		for _, c := range p.Care {
			if c.Pos == p.VictimPos {
				continue
			}
			if aggr == sifault.X {
				aggr = c.Sym
			} else if c.Sym != aggr {
				t.Fatalf("pattern %d: mixed aggressor symbols", i)
			}
		}
	}
}

func TestReducedMTPatternCount(t *testing.T) {
	s := busSOC(t, 4)
	topo, err := Random(s, RandomConfig{FanOut: 1, Width: 10}, 4)
	if err != nil {
		t.Fatal(err)
	}
	k := 2
	patterns, err := ReducedMTPatterns(topo, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	bound := sifault.ReducedMTCount(len(topo.Nets), k)
	if int64(len(patterns)) > bound {
		t.Errorf("reduced MT patterns %d exceed bound %d", len(patterns), bound)
	}
	// Interior nets have full 2k windows, so the total should be close
	// to the bound (boundary nets have smaller windows).
	if float64(len(patterns)) < 0.5*float64(bound) {
		t.Errorf("reduced MT patterns %d far below bound %d", len(patterns), bound)
	}
	sp := sifault.NewSpace(s)
	for i, p := range patterns {
		if err := p.Validate(sp); err != nil {
			t.Fatalf("pattern %d: %v", i, err)
		}
	}
}

func TestReducedMTCap(t *testing.T) {
	s := busSOC(t, 4)
	topo, err := Random(s, RandomConfig{FanOut: 1, Width: 10}, 4)
	if err != nil {
		t.Fatal(err)
	}
	patterns, err := ReducedMTPatterns(topo, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(patterns) != 100 {
		t.Errorf("cap ignored: %d patterns", len(patterns))
	}
	if _, err := ReducedMTPatterns(topo, 20, 0); err == nil {
		t.Error("accepted absurd locality factor")
	}
}

func TestTopologyPatternsFeedCompaction(t *testing.T) {
	// End-to-end: MA test set from a topology compacts like any other
	// SI test set.
	s := busSOC(t, 6)
	topo, err := Random(s, RandomConfig{FanOut: 2, Width: 16, BusFraction: 0.5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	patterns, err := MAPatterns(topo, 3)
	if err != nil {
		t.Fatal(err)
	}
	sp := sifault.NewSpace(s)
	out, stats := compaction.Greedy(sp, patterns)
	if stats.Compacted >= len(patterns) {
		t.Errorf("no compaction achieved: %d -> %d", len(patterns), stats.Compacted)
	}
	for _, p := range out {
		if err := p.Validate(sp); err != nil {
			t.Fatal(err)
		}
	}
}
