package sifault

import (
	"strings"
	"testing"

	"sitam/internal/soc"
)

func TestDistribution(t *testing.T) {
	var d Distribution
	if d.Mean() != 0 {
		t.Errorf("empty mean = %v", d.Mean())
	}
	for _, v := range []int{5, 1, 3} {
		d.Add(v)
	}
	if d.Min != 1 || d.Max != 5 || d.N != 3 || d.Mean() != 3 {
		t.Errorf("distribution = %+v", d)
	}
	if !strings.Contains(d.String(), "mean=3.0") {
		t.Errorf("String = %q", d.String())
	}
}

func TestAnalyzeGeneratedSet(t *testing.T) {
	s := soc.MustLoadBenchmark("p34392")
	patterns, err := Generate(s, GenConfig{N: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := Analyze(patterns)
	if st.Patterns != 2000 || st.TotalWeight != 2000 {
		t.Fatalf("stats = %+v", st)
	}
	// With quiescing on, care bits per pattern are at least the
	// smallest core's WOC count.
	if st.CareBits.Min < 16 {
		t.Errorf("min care bits %d suspiciously low for quiesced patterns", st.CareBits.Min)
	}
	// Transitions = victim (if transitioning) + 2..6 aggressors.
	if st.Transitions.Min < 2 || st.Transitions.Max > 7 {
		t.Errorf("transitions %s out of [2,7]", st.Transitions)
	}
	if frac := float64(st.BusUsing) / 2000; frac < 0.45 || frac > 0.55 {
		t.Errorf("bus usage fraction %.2f", frac)
	}
	// All 19 cores should attract victims.
	if len(st.VictimsPerCore) != s.NumCores() {
		t.Errorf("victims spread over %d cores, want %d", len(st.VictimsPerCore), s.NumCores())
	}
	out := st.Format()
	for _, want := range []string{"2000 patterns", "care bits", "bus usage", "victims per core"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	st := Analyze(nil)
	if st.Patterns != 0 || st.TotalWeight != 0 {
		t.Errorf("stats = %+v", st)
	}
	if !strings.Contains(st.Format(), "0 patterns") {
		t.Errorf("Format = %q", st.Format())
	}
}
