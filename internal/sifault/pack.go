package sifault

// Bit-plane packing of pattern care data for word-parallel
// compatibility checks (internal/compaction). The four determined
// symbols fit two bits (Symbol-1 ∈ {0..3}), so a pattern's care list
// packs into 64-position words of three planes: a care mask and the
// two value bit planes. Two care positions conflict exactly when both
// care masks have the bit set and the value planes differ in either
// bit — one AND plus two XOR/OR per 64 positions.

// PackedWord is one 64-position word of a pattern's care data.
type PackedWord struct {
	// Idx is the word index: the word covers positions
	// [64*Idx, 64*Idx+63] of the WOC position space.
	Idx int32

	// Care has bit p set when position 64*Idx+p is determined.
	Care uint64

	// V0 and V1 are the low and high bit planes of Symbol-1 at each
	// care position; bits outside Care are zero.
	V0, V1 uint64
}

// AppendPackedWords appends the packed word form of p's care list to
// dst and returns the extended slice. Words come out in ascending Idx
// order with no duplicates (the care list of a valid pattern is
// strictly sorted by position), and packing never merges into words
// appended by an earlier call, so several patterns can share one arena
// slice with the caller recording offsets. The pattern must be valid
// (no X symbols in the care list).
func AppendPackedWords(dst []PackedWord, p *Pattern) []PackedWord {
	start := len(dst)
	for _, c := range p.Care {
		idx := c.Pos >> 6
		bit := uint(c.Pos & 63)
		v := uint64(c.Sym - 1)
		if n := len(dst); n == start || dst[n-1].Idx != idx {
			dst = append(dst, PackedWord{Idx: idx})
		}
		w := &dst[len(dst)-1]
		w.Care |= 1 << bit
		w.V0 |= (v & 1) << bit
		w.V1 |= (v >> 1) << bit
	}
	return dst
}

// ConflictsWith reports whether the two words carry different symbols
// at any shared care position. Words must cover the same Idx.
func (w PackedWord) ConflictsWith(o PackedWord) bool {
	both := w.Care & o.Care
	return both&((w.V0^o.V0)|(w.V1^o.V1)) != 0
}

// SymbolAt returns the symbol at bit position p of the word (X when
// the position is not determined).
func (w PackedWord) SymbolAt(p uint) Symbol {
	if w.Care&(1<<p) == 0 {
		return X
	}
	return Symbol(1 + (w.V0>>p)&1 + 2*((w.V1>>p)&1))
}
