package sifault

import (
	"bytes"
	"strings"
	"testing"

	"sitam/internal/soc"
)

func TestPatternRoundTrip(t *testing.T) {
	s := soc.MustLoadBenchmark("p34392")
	sp := NewSpace(s)
	patterns, err := Generate(s, GenConfig{N: 150, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePatterns(&buf, sp, patterns); err != nil {
		t.Fatal(err)
	}
	total, bus, got, err := ReadPatterns(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if total != sp.Total() || bus != sp.BusWidth() {
		t.Errorf("space (%d,%d), want (%d,%d)", total, bus, sp.Total(), sp.BusWidth())
	}
	if len(got) != len(patterns) {
		t.Fatalf("%d patterns, want %d", len(got), len(patterns))
	}
	for i := range got {
		a, b := patterns[i], got[i]
		if a.Weight != b.Weight || a.VictimPos != b.VictimPos || a.VictimCore != b.VictimCore {
			t.Fatalf("pattern %d header mismatch", i)
		}
		if len(a.Care) != len(b.Care) || len(a.Bus) != len(b.Bus) {
			t.Fatalf("pattern %d length mismatch", i)
		}
		for j := range a.Care {
			if a.Care[j] != b.Care[j] {
				t.Fatalf("pattern %d care %d: %v vs %v", i, j, a.Care[j], b.Care[j])
			}
		}
		for j := range a.Bus {
			if a.Bus[j] != b.Bus[j] {
				t.Fatalf("pattern %d bus %d mismatch", i, j)
			}
		}
	}
}

func TestReadPatternsErrors(t *testing.T) {
	cases := map[string]string{
		"no header":     "p w=1 care=0:u\n",
		"bad directive": "space 10 4\nq w=1\n",
		"bad weight":    "space 10 4\np w=zero\n",
		"bad symbol":    "space 10 4\np w=1 care=0:z\n",
		"pos range":     "space 10 4\np w=1 care=99:u\n",
		"bus range":     "space 10 4\np w=1 bus=9:1\n",
		"dup care":      "space 10 4\np w=1 care=3:u,3:u\n",
		"bad field":     "space 10 4\np bogus\n",
		"unknown key":   "space 10 4\np zz=1\n",
		"bad space":     "space ten 4\n",
	}
	for name, text := range cases {
		if _, _, _, err := ReadPatterns(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
}

func TestReadPatternsMinimal(t *testing.T) {
	text := "# comment\nspace 10 4\n\np w=2 v=3 vc=1 care=3:u,4:0 bus=0:1\np\n"
	total, bus, ps, err := ReadPatterns(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if total != 10 || bus != 4 || len(ps) != 2 {
		t.Fatalf("got (%d,%d,%d patterns)", total, bus, len(ps))
	}
	if ps[0].Weight != 2 || ps[0].Care[0].Sym != Rise || ps[0].Bus[0].Driver != 1 {
		t.Errorf("pattern 0 = %+v", ps[0])
	}
	// Bare "p" is a weight-1 pattern with no care bits.
	if ps[1].Weight != 1 || len(ps[1].Care) != 0 || ps[1].VictimPos != -1 {
		t.Errorf("pattern 1 = %+v", ps[1])
	}
}
