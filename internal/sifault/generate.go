package sifault

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"sitam/internal/soc"
)

// GenConfig parameterizes the random SI pattern generator of Section 5 of
// the paper: each pattern has one victim and Na random aggressors with
// 2 <= Na <= 6, at most two aggressors outside the victim core's
// boundary, and occupies the shared bus with probability BusProb (with
// 1..Na occupied lines).
type GenConfig struct {
	// N is the number of patterns to generate (the paper's N_r).
	N int

	// Seed drives all randomness; equal seeds give equal pattern sets.
	Seed int64

	// MinAggressors and MaxAggressors bound Na. Zero values default to
	// the paper's 2 and 6.
	MinAggressors int
	MaxAggressors int

	// MaxExternal is the maximum number of aggressors outside the
	// victim core's boundary. A negative value means no limit; zero
	// defaults to the paper's 2.
	MaxExternal int

	// BusProb is the probability that a pattern uses the shared bus.
	// A negative value means 0; the zero value defaults to the paper's
	// 0.5.
	BusProb float64

	// QuiesceProb is the probability that each background (non-victim,
	// non-aggressor) WOC of the victim's core is held at a steady
	// random 0/1 during the pattern, rather than left as a don't-care.
	// Holding the victim core's other outputs quiescent prevents
	// uncontrolled self-noise during the at-speed transition, and is
	// what Table 1's steady 0/1 entries depict. A negative value means
	// 0 (fully sparse patterns); the zero value defaults to 1.0.
	QuiesceProb float64

	// ExternalLocality bounds how far (in core-list order, a proxy for
	// layout adjacency) an external aggressor's core may be from the
	// victim's core: crosstalk couples only interconnects that are
	// physically routed together, so aggressors outside the victim
	// core's boundary come from neighboring cores (cf. the locality
	// factor of the reduced MT model). A negative value means
	// unlimited (uniform over all other cores); the zero value
	// defaults to 2 cores on either side.
	ExternalLocality int

	// ExternalProb is the probability that a pattern has any
	// aggressors outside the victim core's boundary at all (the paper
	// allows "at most two"; most coupling is within one core's own
	// boundary region). When it strikes, 1..MaxExternal external
	// aggressors are drawn. A negative value means 0; the zero value
	// defaults to 0.3.
	ExternalProb float64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.MinAggressors == 0 {
		c.MinAggressors = 2
	}
	if c.MaxAggressors == 0 {
		c.MaxAggressors = 6
	}
	if c.MaxExternal == 0 {
		c.MaxExternal = 2
	}
	if c.BusProb == 0 {
		c.BusProb = 0.5
	}
	if c.BusProb < 0 {
		c.BusProb = 0
	}
	if c.QuiesceProb == 0 {
		c.QuiesceProb = 1.0
	}
	if c.QuiesceProb < 0 {
		c.QuiesceProb = 0
	}
	if c.ExternalLocality == 0 {
		c.ExternalLocality = 2
	}
	if c.ExternalProb == 0 {
		c.ExternalProb = 0.3
	}
	if c.ExternalProb < 0 {
		c.ExternalProb = 0
	}
	return c
}

// maFaultKinds enumerates the six maximal-aggressor fault types: positive
// and negative glitch on a quiescent victim, rising and falling delay
// (aggressors opposing the victim) and rising and falling speedup
// (aggressors following the victim).
var maFaultKinds = [6]struct{ victim, aggressor Symbol }{
	{Zero, Rise}, // positive glitch
	{One, Fall},  // negative glitch
	{Rise, Fall}, // rising delay
	{Fall, Rise}, // falling delay
	{Rise, Rise}, // rising speedup
	{Fall, Fall}, // falling speedup
}

// Generate produces cfg.N random SI test patterns for s, following the
// experimental protocol of Section 5. Victim interconnects are drawn
// uniformly over all WOC positions (so cores with wider boundaries see
// proportionally more victims); internal aggressors are distinct WOCs of
// the victim core, external aggressors distinct WOCs of other cores.
func Generate(s *soc.SOC, cfg GenConfig) ([]*Pattern, error) {
	patterns, _, err := GenerateCtx(context.Background(), s, cfg)
	return patterns, err
}

// GenerateCtx is Generate as an anytime algorithm: the context is
// polled every 512 patterns, and on cancellation or deadline expiry the
// prefix generated so far is returned with the partial flag set and a
// nil error. The prefix is exactly what a full run with the same seed
// would have produced first, so downstream consumers see a smaller but
// otherwise identical workload. If the context fires before any
// pattern was generated, the context's error is returned instead.
func GenerateCtx(ctx context.Context, s *soc.SOC, cfg GenConfig) ([]*Pattern, bool, error) {
	cfg = cfg.withDefaults()
	if cfg.N < 0 {
		return nil, false, fmt.Errorf("sifault: negative pattern count %d", cfg.N)
	}
	if cfg.MinAggressors < 1 || cfg.MaxAggressors < cfg.MinAggressors {
		return nil, false, fmt.Errorf("sifault: bad aggressor bounds [%d,%d]", cfg.MinAggressors, cfg.MaxAggressors)
	}
	sp := NewSpace(s)
	if sp.Total() < 2 {
		return nil, false, fmt.Errorf("sifault: SOC has %d WOC positions; need at least 2", sp.Total())
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	patterns := make([]*Pattern, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		if i > 0 && i&511 == 0 && ctx.Err() != nil {
			return patterns, true, nil
		}
		patterns = append(patterns, genOne(sp, cfg, rng))
	}
	return patterns, false, nil
}

func genOne(sp *Space, cfg GenConfig, rng *rand.Rand) *Pattern {
	victim := int32(rng.Intn(sp.Total()))
	victimCore := sp.CoreAt(victim)
	start, n := sp.Range(victimCore)

	// External aggressors come from cores within cfg.ExternalLocality
	// of the victim's core in layout order (a ring), or from all other
	// cores when the locality is unlimited.
	extRanges, extTotal := externalRanges(sp, victimCore, cfg.ExternalLocality)

	na := cfg.MinAggressors + rng.Intn(cfg.MaxAggressors-cfg.MinAggressors+1)
	maxExt := cfg.MaxExternal
	if maxExt < 0 || maxExt > na {
		maxExt = na
	}
	if extTotal == 0 {
		maxExt = 0 // single-core SOC: no external positions exist
	}
	nExt := 0
	if maxExt > 0 && rng.Float64() < cfg.ExternalProb {
		nExt = 1 + rng.Intn(maxExt)
	}
	nInt := na - nExt
	if avail := n - 1; nInt > avail {
		// Victim core boundary too narrow: spill to external aggressors.
		nInt = avail
		nExt = na - nInt
		if nExt > extTotal {
			nExt = extTotal
		}
	}

	kind := maFaultKinds[rng.Intn(len(maFaultKinds))]
	used := map[int32]struct{}{victim: {}}
	care := make([]Care, 0, 1+nInt+nExt)
	care = append(care, Care{Pos: victim, Sym: kind.victim})

	pick := func(lo, span int) int32 {
		for {
			p := int32(lo + rng.Intn(span))
			if _, dup := used[p]; !dup {
				used[p] = struct{}{}
				return p
			}
		}
	}
	for j := 0; j < nInt; j++ {
		care = append(care, Care{Pos: pick(start, n), Sym: kind.aggressor})
	}
	for j := 0; j < nExt; j++ {
		// Uniform over the allowed external positions.
		for {
			off := rng.Intn(extTotal)
			var p int32
			for _, r := range extRanges {
				if off < r.n {
					p = int32(r.start + off)
					break
				}
				off -= r.n
			}
			if _, dup := used[p]; !dup {
				used[p] = struct{}{}
				care = append(care, Care{Pos: p, Sym: kind.aggressor})
				break
			}
		}
	}
	// Quiesce the remaining outputs of the victim's core at steady
	// random background values (see GenConfig.QuiesceProb).
	if cfg.QuiesceProb > 0 {
		for off := 0; off < n; off++ {
			pos := int32(start + off)
			if _, taken := used[pos]; taken {
				continue
			}
			if cfg.QuiesceProb < 1 && rng.Float64() >= cfg.QuiesceProb {
				continue
			}
			sym := Zero
			if rng.Intn(2) == 1 {
				sym = One
			}
			care = append(care, Care{Pos: pos, Sym: sym})
		}
	}
	sort.Slice(care, func(a, b int) bool { return care[a].Pos < care[b].Pos })

	p := &Pattern{
		Care:       care,
		VictimPos:  victim,
		VictimCore: int32(victimCore),
		Weight:     1,
	}
	if sp.BusWidth() > 0 && rng.Float64() < cfg.BusProb {
		nLines := 1 + rng.Intn(na)
		if nLines > sp.BusWidth() {
			nLines = sp.BusWidth()
		}
		lines := rng.Perm(sp.BusWidth())[:nLines]
		sort.Ints(lines)
		for _, l := range lines {
			p.Bus = append(p.Bus, BusUse{Line: int32(l), Driver: int32(victimCore)})
		}
	}
	return p
}

// posRange is one contiguous run of allowed external positions.
type posRange struct{ start, n int }

// externalRanges returns the WOC position ranges of the cores within
// the given locality (in core order, as a ring) of the victim core,
// excluding the victim core itself, together with the total position
// count. A negative locality allows every other core.
func externalRanges(sp *Space, victimCore, locality int) ([]posRange, int) {
	order := sp.CoreOrder()
	nc := len(order)
	vIdx := 0
	for i, id := range order {
		if id == victimCore {
			vIdx = i
			break
		}
	}
	var ranges []posRange
	total := 0
	add := func(idx int) {
		start, n := sp.Range(order[idx])
		if n == 0 {
			return
		}
		ranges = append(ranges, posRange{start, n})
		total += n
	}
	if locality < 0 || 2*locality+1 >= nc {
		for i := range order {
			if i != vIdx {
				add(i)
			}
		}
		return ranges, total
	}
	for d := 1; d <= locality; d++ {
		add((vIdx + d) % nc)
		add((vIdx - d + nc) % nc)
	}
	return ranges, total
}

// MACount returns the test-vector-pair count of the maximal-aggressor
// fault model for n victim interconnects: 6 faults per victim.
func MACount(n int) int64 { return 6 * int64(n) }

// ReducedMTCount returns the approximate pattern count of the reduced
// multiple-transition fault model with locality factor k, per Tehranipour
// et al.: roughly n · 2^(2k+2).
func ReducedMTCount(n, k int) int64 {
	return int64(n) << uint(2*k+2)
}

// SerialExTestCycles estimates the serial (1-bit TAM) external test time
// for the given pattern count over an SOC whose cores expose totalCells
// boundary cells: every pattern shifts through all boundary cells once.
func SerialExTestCycles(patterns, totalCells int64) int64 {
	return patterns * totalCells
}
