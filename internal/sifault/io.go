package sifault

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Patterns are exchanged between tools in a line-oriented text format:
//
//	# sitam SI patterns
//	space <totalWOC> <busWidth>
//	p w=3 v=17 vc=2 care=17:u,18:d,40:0 bus=3:2,7:2
//
// One "p" line per pattern: w= weight, v= victim position (-1 if
// merged), vc= victim core (-1 if merged), care= comma-separated
// pos:symbol entries with symbols {0,1,u,d} (u=rise, d=fall; x is never
// stored), bus= comma-separated line:driverCore entries. care= and bus=
// may be omitted when empty.

var symbolCode = map[Symbol]string{Zero: "0", One: "1", Rise: "u", Fall: "d"}

var codeSymbol = map[string]Symbol{"0": Zero, "1": One, "u": Rise, "d": Fall}

// WritePatterns serializes patterns for the space sp.
func WritePatterns(w io.Writer, sp *Space, patterns []*Pattern) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# sitam SI patterns")
	fmt.Fprintf(bw, "space %d %d\n", sp.Total(), sp.BusWidth())
	for _, p := range patterns {
		fmt.Fprintf(bw, "p w=%d v=%d vc=%d", p.Weight, p.VictimPos, p.VictimCore)
		if len(p.Care) > 0 {
			bw.WriteString(" care=")
			for i, c := range p.Care {
				if i > 0 {
					bw.WriteByte(',')
				}
				fmt.Fprintf(bw, "%d:%s", c.Pos, symbolCode[c.Sym])
			}
		}
		if len(p.Bus) > 0 {
			bw.WriteString(" bus=")
			for i, b := range p.Bus {
				if i > 0 {
					bw.WriteByte(',')
				}
				fmt.Fprintf(bw, "%d:%d", b.Line, b.Driver)
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadPatterns parses a pattern file. It returns the declared space
// dimensions (total WOC positions and bus width) alongside the
// patterns; callers should check them against the SOC they pair the
// patterns with.
func ReadPatterns(r io.Reader) (total, busWidth int, patterns []*Pattern, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineno := 0
	sawSpace := false
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		fail := func(format string, a ...any) error {
			return fmt.Errorf("patterns: line %d: %s", lineno, fmt.Sprintf(format, a...))
		}
		switch fields[0] {
		case "space":
			if len(fields) != 3 {
				return 0, 0, nil, fail("space expects 2 integers")
			}
			if total, err = strconv.Atoi(fields[1]); err != nil {
				return 0, 0, nil, fail("bad total %q", fields[1])
			}
			if busWidth, err = strconv.Atoi(fields[2]); err != nil {
				return 0, 0, nil, fail("bad bus width %q", fields[2])
			}
			sawSpace = true
		case "p":
			if !sawSpace {
				return 0, 0, nil, fail("pattern before space header")
			}
			p := &Pattern{VictimPos: -1, VictimCore: -1, Weight: 1}
			for _, f := range fields[1:] {
				key, val, ok := strings.Cut(f, "=")
				if !ok {
					return 0, 0, nil, fail("bad field %q", f)
				}
				switch key {
				case "w":
					v, err := strconv.Atoi(val)
					if err != nil || v < 1 {
						return 0, 0, nil, fail("bad weight %q", val)
					}
					p.Weight = int32(v)
				case "v":
					v, err := strconv.Atoi(val)
					if err != nil {
						return 0, 0, nil, fail("bad victim %q", val)
					}
					p.VictimPos = int32(v)
				case "vc":
					v, err := strconv.Atoi(val)
					if err != nil {
						return 0, 0, nil, fail("bad victim core %q", val)
					}
					p.VictimCore = int32(v)
				case "care":
					for _, ent := range strings.Split(val, ",") {
						ps, ss, ok := strings.Cut(ent, ":")
						if !ok {
							return 0, 0, nil, fail("bad care entry %q", ent)
						}
						pos, err := strconv.Atoi(ps)
						if err != nil || pos < 0 || pos >= total {
							return 0, 0, nil, fail("care position %q outside space of %d", ps, total)
						}
						sym, ok := codeSymbol[ss]
						if !ok {
							return 0, 0, nil, fail("unknown symbol %q", ss)
						}
						p.Care = append(p.Care, Care{Pos: int32(pos), Sym: sym})
					}
				case "bus":
					for _, ent := range strings.Split(val, ",") {
						ls, ds, ok := strings.Cut(ent, ":")
						if !ok {
							return 0, 0, nil, fail("bad bus entry %q", ent)
						}
						l, err := strconv.Atoi(ls)
						if err != nil || l < 0 || l >= busWidth {
							return 0, 0, nil, fail("bus line %q outside %d-bit bus", ls, busWidth)
						}
						d, err := strconv.Atoi(ds)
						if err != nil {
							return 0, 0, nil, fail("bad bus driver %q", ds)
						}
						p.Bus = append(p.Bus, BusUse{Line: int32(l), Driver: int32(d)})
					}
				default:
					return 0, 0, nil, fail("unknown field %q", key)
				}
			}
			sort.Slice(p.Care, func(i, j int) bool { return p.Care[i].Pos < p.Care[j].Pos })
			sort.Slice(p.Bus, func(i, j int) bool { return p.Bus[i].Line < p.Bus[j].Line })
			for i := 1; i < len(p.Care); i++ {
				if p.Care[i].Pos == p.Care[i-1].Pos {
					return 0, 0, nil, fail("duplicate care position %d", p.Care[i].Pos)
				}
			}
			patterns = append(patterns, p)
		default:
			return 0, 0, nil, fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return 0, 0, nil, fmt.Errorf("patterns: %w", err)
	}
	if !sawSpace {
		return 0, 0, nil, fmt.Errorf("patterns: missing space header")
	}
	return total, busWidth, patterns, nil
}
