package sifault

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadPatterns checks that the pattern parser never panics and that
// accepted inputs survive a write/reparse round trip.
func FuzzReadPatterns(f *testing.F) {
	f.Add("space 10 4\np w=2 v=3 vc=1 care=3:u,4:0 bus=0:1\n")
	f.Add("# c\nspace 1 0\np\n")
	f.Add("space 10 4\np care=0:u care=1:d\n")
	f.Add("space -5 -5\n")
	f.Add("p w=1\nspace 10 4\n")
	f.Fuzz(func(t *testing.T, text string) {
		total, bus, patterns, err := ReadPatterns(strings.NewReader(text))
		if err != nil {
			return
		}
		if total < 0 || bus < 0 {
			// The parser does not reject negative dimensions outright
			// (patterns just can't reference any position), but they
			// must not crash the writer below either.
			return
		}
		// Round trip through a synthetic space of the declared size.
		sp := &Space{order: []int{1}, starts: []int{0, total}, busWidth: bus}
		var buf bytes.Buffer
		if err := WritePatterns(&buf, sp, patterns); err != nil {
			t.Fatalf("WritePatterns: %v", err)
		}
		t2, b2, p2, err := ReadPatterns(&buf)
		if err != nil {
			t.Fatalf("reparse: %v\n%s", err, buf.String())
		}
		if t2 != total || b2 != bus || len(p2) != len(patterns) {
			t.Fatalf("round trip changed shape: (%d,%d,%d) vs (%d,%d,%d)",
				t2, b2, len(p2), total, bus, len(patterns))
		}
		for i := range p2 {
			if p2[i].Weight != patterns[i].Weight || len(p2[i].Care) != len(patterns[i].Care) {
				t.Fatalf("pattern %d changed in round trip", i)
			}
		}
	})
}
