package sifault

import (
	"strings"
	"testing"
	"testing/quick"

	"sitam/internal/soc"
)

func twoCoreSOC() *soc.SOC {
	return &soc.SOC{
		Name:     "mini",
		BusWidth: 4,
		CoreList: []*soc.Core{
			{ID: 1, Inputs: 2, Outputs: 3, Patterns: 1},
			{ID: 2, Inputs: 2, Outputs: 5, Patterns: 1},
		},
	}
}

func TestSymbolCompatibility(t *testing.T) {
	symbols := []Symbol{X, Zero, One, Rise, Fall}
	for _, a := range symbols {
		for _, b := range symbols {
			want := a == X || b == X || a == b
			if got := a.CompatibleWith(b); got != want {
				t.Errorf("CompatibleWith(%v,%v) = %v, want %v", a, b, got, want)
			}
			if got, want2 := a.CompatibleWith(b), b.CompatibleWith(a); got != want2 {
				t.Errorf("CompatibleWith not symmetric for %v,%v", a, b)
			}
		}
	}
}

func TestSymbolIntersect(t *testing.T) {
	if got := X.Intersect(Rise); got != Rise {
		t.Errorf("X∩↑ = %v", got)
	}
	if got := Fall.Intersect(X); got != Fall {
		t.Errorf("↓∩X = %v", got)
	}
	if got := One.Intersect(One); got != One {
		t.Errorf("1∩1 = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Intersect(0,1) did not panic")
		}
	}()
	Zero.Intersect(One)
}

func TestSymbolString(t *testing.T) {
	for sym, want := range map[Symbol]string{X: "x", Zero: "0", One: "1", Rise: "↑", Fall: "↓"} {
		if got := sym.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", sym, got, want)
		}
	}
	if got := Symbol(99).String(); !strings.Contains(got, "99") {
		t.Errorf("invalid symbol String() = %q", got)
	}
}

func TestSpaceLayout(t *testing.T) {
	sp := NewSpace(twoCoreSOC())
	if sp.Total() != 8 {
		t.Fatalf("Total = %d, want 8", sp.Total())
	}
	if sp.BusWidth() != 4 {
		t.Errorf("BusWidth = %d, want 4", sp.BusWidth())
	}
	start, n := sp.Range(1)
	if start != 0 || n != 3 {
		t.Errorf("Range(1) = (%d,%d), want (0,3)", start, n)
	}
	start, n = sp.Range(2)
	if start != 3 || n != 5 {
		t.Errorf("Range(2) = (%d,%d), want (3,5)", start, n)
	}
	for pos := int32(0); pos < 3; pos++ {
		if sp.CoreAt(pos) != 1 {
			t.Errorf("CoreAt(%d) = %d, want 1", pos, sp.CoreAt(pos))
		}
	}
	for pos := int32(3); pos < 8; pos++ {
		if sp.CoreAt(pos) != 2 {
			t.Errorf("CoreAt(%d) = %d, want 2", pos, sp.CoreAt(pos))
		}
	}
	if sp.WOCOf(2) != 5 {
		t.Errorf("WOCOf(2) = %d", sp.WOCOf(2))
	}
}

func TestSpacePanics(t *testing.T) {
	sp := NewSpace(twoCoreSOC())
	for name, f := range map[string]func(){
		"CoreAt negative": func() { sp.CoreAt(-1) },
		"CoreAt past end": func() { sp.CoreAt(8) },
		"Range unknown":   func() { sp.Range(42) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPatternSymbolAtAndCareCores(t *testing.T) {
	sp := NewSpace(twoCoreSOC())
	p := &Pattern{
		Care:   []Care{{Pos: 1, Sym: Rise}, {Pos: 4, Sym: Zero}},
		Weight: 1,
	}
	if got := p.SymbolAt(1); got != Rise {
		t.Errorf("SymbolAt(1) = %v", got)
	}
	if got := p.SymbolAt(2); got != X {
		t.Errorf("SymbolAt(2) = %v, want x", got)
	}
	cc := p.CareCores(sp)
	if len(cc) != 2 || cc[0] != 1 || cc[1] != 2 {
		t.Errorf("CareCores = %v, want [1 2]", cc)
	}
	if err := p.Validate(sp); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPatternValidateRejects(t *testing.T) {
	sp := NewSpace(twoCoreSOC())
	cases := map[string]*Pattern{
		"stored X":         {Care: []Care{{Pos: 0, Sym: X}}, Weight: 1},
		"pos out of range": {Care: []Care{{Pos: 99, Sym: One}}, Weight: 1},
		"unsorted":         {Care: []Care{{Pos: 3, Sym: One}, {Pos: 1, Sym: One}}, Weight: 1},
		"dup pos":          {Care: []Care{{Pos: 3, Sym: One}, {Pos: 3, Sym: One}}, Weight: 1},
		"bus out of range": {Bus: []BusUse{{Line: 9, Driver: 1}}, Weight: 1},
		"bus unsorted":     {Bus: []BusUse{{Line: 2, Driver: 1}, {Line: 1, Driver: 1}}, Weight: 1},
		"zero weight":      {Weight: 0},
	}
	for name, p := range cases {
		if err := p.Validate(sp); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, p)
		}
	}
}

func TestPatternClone(t *testing.T) {
	p := &Pattern{
		Care:       []Care{{Pos: 1, Sym: Rise}},
		Bus:        []BusUse{{Line: 0, Driver: 1}},
		VictimPos:  1,
		VictimCore: 1,
		Weight:     1,
	}
	c := p.Clone()
	c.Care[0].Sym = Fall
	c.Bus[0].Line = 2
	if p.Care[0].Sym != Rise || p.Bus[0].Line != 0 {
		t.Error("Clone shares backing arrays with original")
	}
}

func TestPatternFormat(t *testing.T) {
	sp := NewSpace(twoCoreSOC())
	p := &Pattern{
		Care:   []Care{{Pos: 0, Sym: Rise}, {Pos: 4, Sym: One}},
		Bus:    []BusUse{{Line: 2, Driver: 1}},
		Weight: 1,
	}
	got := p.Format(sp)
	if !strings.Contains(got, "↑xx") || !strings.Contains(got, "x1xxx") || !strings.Contains(got, "xx1x") {
		t.Errorf("Format = %q", got)
	}
}

func TestGenerateInvariants(t *testing.T) {
	s := soc.MustLoadBenchmark("p34392")
	sp := NewSpace(s)
	cfg := GenConfig{N: 500, Seed: 7}
	patterns, err := Generate(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(patterns) != 500 {
		t.Fatalf("got %d patterns", len(patterns))
	}
	def := cfg.withDefaults()
	for i, p := range patterns {
		if err := p.Validate(sp); err != nil {
			t.Fatalf("pattern %d: %v", i, err)
		}
		if p.VictimPos < 0 || p.VictimCore < 0 {
			t.Fatalf("pattern %d: missing victim", i)
		}
		if sp.CoreAt(p.VictimPos) != int(p.VictimCore) {
			t.Fatalf("pattern %d: victim pos %d not in core %d", i, p.VictimPos, p.VictimCore)
		}
		// Count aggressors (transitions other than the victim's own
		// transition symbol position) and external care cores.
		vStart, vN := sp.Range(int(p.VictimCore))
		nExtCores := map[int]bool{}
		nExtAggr := 0
		nAggr := 0
		for _, c := range p.Care {
			inVictim := int(c.Pos) >= vStart && int(c.Pos) < vStart+vN
			if c.Pos == p.VictimPos {
				continue
			}
			if c.Sym == Rise || c.Sym == Fall {
				nAggr++
				if !inVictim {
					nExtAggr++
					nExtCores[sp.CoreAt(c.Pos)] = true
				}
			} else if !inVictim {
				t.Fatalf("pattern %d: steady background outside victim core at %d", i, c.Pos)
			}
		}
		if nAggr < def.MinAggressors || nAggr > def.MaxAggressors {
			t.Fatalf("pattern %d: %d aggressors outside [%d,%d]", i, nAggr, def.MinAggressors, def.MaxAggressors)
		}
		if nExtAggr > def.MaxExternal {
			t.Fatalf("pattern %d: %d external aggressors > %d", i, nExtAggr, def.MaxExternal)
		}
		if len(p.Bus) > def.MaxAggressors {
			t.Fatalf("pattern %d: %d bus lines > Na max", i, len(p.Bus))
		}
		for _, b := range p.Bus {
			if b.Driver != p.VictimCore {
				t.Fatalf("pattern %d: bus line %d driven by %d, not victim core %d", i, b.Line, b.Driver, p.VictimCore)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := soc.MustLoadBenchmark("p34392")
	a, err := Generate(s, GenConfig{N: 200, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(s, GenConfig{N: 200, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if len(a[i].Care) != len(b[i].Care) || a[i].VictimPos != b[i].VictimPos {
			t.Fatalf("pattern %d differs between identical seeds", i)
		}
		for j := range a[i].Care {
			if a[i].Care[j] != b[i].Care[j] {
				t.Fatalf("pattern %d care %d differs", i, j)
			}
		}
	}
	c, err := Generate(s, GenConfig{N: 200, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].VictimPos != c[i].VictimPos {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical victim sequences")
	}
}

func TestGenerateBusProbability(t *testing.T) {
	s := soc.MustLoadBenchmark("p34392")
	patterns, err := Generate(s, GenConfig{N: 4000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	withBus := 0
	for _, p := range patterns {
		if len(p.Bus) > 0 {
			withBus++
		}
	}
	frac := float64(withBus) / float64(len(patterns))
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("bus usage fraction = %.3f, want ~0.5", frac)
	}
	// BusProb < 0 disables the bus entirely.
	noBus, err := Generate(s, GenConfig{N: 300, Seed: 5, BusProb: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range noBus {
		if len(p.Bus) != 0 {
			t.Fatalf("pattern %d uses bus despite BusProb<0", i)
		}
	}
}

func TestGenerateQuiesceControls(t *testing.T) {
	s := soc.MustLoadBenchmark("p34392")
	sp := NewSpace(s)
	sparse, err := Generate(s, GenConfig{N: 300, Seed: 9, QuiesceProb: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range sparse {
		// Without quiescing, care bits are only the victim+aggressors.
		if len(p.Care) > 7 {
			t.Fatalf("pattern %d has %d care bits without quiescing", i, len(p.Care))
		}
	}
	full, err := Generate(s, GenConfig{N: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range full {
		_, vN := sp.Range(int(p.VictimCore))
		if len(p.Care) < vN {
			t.Fatalf("pattern %d has %d care bits, want >= victim core WOC %d", i, len(p.Care), vN)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	s := soc.MustLoadBenchmark("p34392")
	if _, err := Generate(s, GenConfig{N: -1}); err == nil {
		t.Error("accepted negative N")
	}
	if _, err := Generate(s, GenConfig{N: 10, MinAggressors: 5, MaxAggressors: 2}); err == nil {
		t.Error("accepted inverted aggressor bounds")
	}
	tiny := &soc.SOC{Name: "tiny", CoreList: []*soc.Core{{ID: 1, Inputs: 1, Outputs: 1, Patterns: 1}}}
	if _, err := Generate(tiny, GenConfig{N: 10}); err == nil {
		t.Error("accepted SOC with a single WOC")
	}
}

func TestGenerateSingleCoreSOC(t *testing.T) {
	// All aggressors must be internal when there is only one core.
	s := &soc.SOC{Name: "one", BusWidth: 8, CoreList: []*soc.Core{{ID: 1, Inputs: 4, Outputs: 20, Patterns: 1}}}
	sp := NewSpace(s)
	patterns, err := Generate(s, GenConfig{N: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range patterns {
		for _, c := range p.Care {
			if sp.CoreAt(c.Pos) != 1 {
				t.Fatalf("pattern %d: position outside the only core", i)
			}
		}
	}
}

func TestFaultModelCounts(t *testing.T) {
	if got := MACount(640); got != 3840 {
		t.Errorf("MACount(640) = %d, want 3840 (paper Section 2)", got)
	}
	if got := ReducedMTCount(640, 3); got != 163840 {
		t.Errorf("ReducedMTCount(640,3) = %d, want 163840 (paper Section 2)", got)
	}
	if got := ReducedMTCount(1, 0); got != 4 {
		t.Errorf("ReducedMTCount(1,0) = %d, want 4", got)
	}
	if got := SerialExTestCycles(3840, 4000); got != 15360000 {
		t.Errorf("SerialExTestCycles = %d", got)
	}
}

func TestExternalRangesProperty(t *testing.T) {
	s := soc.MustLoadBenchmark("p93791")
	sp := NewSpace(s)
	f := func(coreIdx uint8, locality uint8) bool {
		order := sp.CoreOrder()
		victim := order[int(coreIdx)%len(order)]
		loc := 1 + int(locality%5)
		ranges, total := externalRanges(sp, victim, loc)
		sum := 0
		vStart, vN := sp.Range(victim)
		for _, r := range ranges {
			sum += r.n
			// No range overlaps the victim core.
			if r.start < vStart+vN && r.start+r.n > vStart {
				return false
			}
		}
		return sum == total && total > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
