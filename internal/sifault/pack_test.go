package sifault

import (
	"testing"

	"sitam/internal/soc"
)

// TestAppendPackedWordsRoundtrip packs generated patterns and unpacks
// them again via SymbolAt: the packed form must reproduce the care
// list exactly, with words in strictly ascending Idx order and value
// bits confined to the care mask.
func TestAppendPackedWordsRoundtrip(t *testing.T) {
	s := soc.MustLoadBenchmark("d695")
	patterns, err := Generate(s, GenConfig{N: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for pi, p := range patterns {
		words := AppendPackedWords(nil, p)
		for i := 1; i < len(words); i++ {
			if words[i].Idx <= words[i-1].Idx {
				t.Fatalf("pattern %d: word idx %d after %d", pi, words[i].Idx, words[i-1].Idx)
			}
		}
		var unpacked []Care
		for _, w := range words {
			if w.Care == 0 {
				t.Fatalf("pattern %d: empty packed word at idx %d", pi, w.Idx)
			}
			if w.V0&^w.Care != 0 || w.V1&^w.Care != 0 {
				t.Fatalf("pattern %d word %d: value bits outside care mask", pi, w.Idx)
			}
			for b := uint(0); b < 64; b++ {
				if sym := w.SymbolAt(b); sym != X {
					unpacked = append(unpacked, Care{Pos: w.Idx<<6 + int32(b), Sym: sym})
				}
			}
		}
		if len(unpacked) != len(p.Care) {
			t.Fatalf("pattern %d: %d unpacked entries, want %d", pi, len(unpacked), len(p.Care))
		}
		for i := range p.Care {
			if unpacked[i] != p.Care[i] {
				t.Fatalf("pattern %d care %d: %+v, want %+v", pi, i, unpacked[i], p.Care[i])
			}
		}
	}
}

// TestAppendPackedWordsArena checks the shared-arena contract: a
// second pattern never merges into words appended by an earlier call,
// even when both cover the same word index.
func TestAppendPackedWordsArena(t *testing.T) {
	a := &Pattern{Care: []Care{{Pos: 3, Sym: 1}, {Pos: 70, Sym: 2}}}
	b := &Pattern{Care: []Care{{Pos: 5, Sym: 3}}}
	arena := AppendPackedWords(nil, a)
	na := len(arena)
	arena = AppendPackedWords(arena, b)
	if len(arena) != na+1 {
		t.Fatalf("second pattern appended %d words, want 1", len(arena)-na)
	}
	if arena[na].Idx != 0 || arena[0].Idx != 0 {
		t.Fatalf("expected both patterns to carry word 0, got idx %d and %d", arena[0].Idx, arena[na].Idx)
	}
	if arena[0].Care == arena[na].Care {
		t.Fatal("patterns merged into one word")
	}
}

// TestConflictsWithMatchesSymbolCompat checks the word-level conflict
// formula against symbol-wise comparison on all pairs of a generated
// corpus (care data only; bus conflicts are covered by the compaction
// differential tests).
func TestConflictsWithMatchesSymbolCompat(t *testing.T) {
	s := soc.MustLoadBenchmark("d695")
	patterns, err := Generate(s, GenConfig{N: 120, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	packed := make([][]PackedWord, len(patterns))
	for i, p := range patterns {
		packed[i] = AppendPackedWords(nil, p)
	}
	conflictsPacked := func(a, b []PackedWord) bool {
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i].Idx < b[j].Idx:
				i++
			case a[i].Idx > b[j].Idx:
				j++
			default:
				if a[i].ConflictsWith(b[j]) {
					return true
				}
				i++
				j++
			}
		}
		return false
	}
	careConflict := func(a, b *Pattern) bool {
		i, j := 0, 0
		for i < len(a.Care) && j < len(b.Care) {
			switch {
			case a.Care[i].Pos < b.Care[j].Pos:
				i++
			case a.Care[i].Pos > b.Care[j].Pos:
				j++
			default:
				if a.Care[i].Sym != b.Care[j].Sym {
					return true
				}
				i++
				j++
			}
		}
		return false
	}
	mismatches := 0
	for i := range patterns {
		for j := i + 1; j < len(patterns); j++ {
			got := conflictsPacked(packed[i], packed[j])
			want := careConflict(patterns[i], patterns[j])
			if got != want {
				t.Fatalf("patterns %d,%d: packed conflict = %v, symbol-wise = %v", i, j, got, want)
			}
			if got {
				mismatches++
			}
		}
	}
	if mismatches == 0 {
		t.Fatal("degenerate corpus: no conflicting pair")
	}
}
