package sifault

import (
	"testing"

	"sitam/internal/soc"
)

// The shard plan's load-bearing invariant: patterns from different
// shards NEVER conflict — neither through shared care words nor
// through mixed-driver bus lines. Everything the sharded compactor
// does (independent first-fit, bin-wise merge) rests on it.

func planFor(t *testing.T, fixture string, cfg GenConfig, maxShards int) (*Space, []*Pattern, ShardPlan) {
	t.Helper()
	s := soc.MustLoadBenchmark(fixture)
	patterns, err := Generate(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp := NewSpace(s)
	return sp, patterns, PlanShards(sp, patterns, maxShards)
}

func checkPlanShape(t *testing.T, patterns []*Pattern, plan ShardPlan, maxShards int) {
	t.Helper()
	if len(plan.Shards) > maxShards {
		t.Fatalf("%d shards exceeds maxShards=%d", len(plan.Shards), maxShards)
	}
	seen := make([]bool, len(patterns))
	prevFirst := int32(-1)
	for si, shard := range plan.Shards {
		if len(shard) == 0 {
			t.Fatalf("shard %d is empty", si)
		}
		if shard[0] <= prevFirst {
			t.Fatalf("shard %d starts at %d, not after previous shard's first index %d", si, shard[0], prevFirst)
		}
		prevFirst = shard[0]
		prev := int32(-1)
		for _, idx := range shard {
			if idx <= prev {
				t.Fatalf("shard %d indices not strictly ascending at %d", si, idx)
			}
			prev = idx
			if idx < 0 || int(idx) >= len(patterns) {
				t.Fatalf("shard %d holds out-of-range index %d", si, idx)
			}
			if seen[idx] {
				t.Fatalf("pattern %d appears in two shards", idx)
			}
			seen[idx] = true
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("pattern %d missing from every shard", i)
		}
	}
}

// conflicts is an independent (slow) conflict oracle: shared care
// position with incompatible symbols, or a shared bus line with
// different drivers.
func conflicts(a, b *Pattern) bool {
	i, j := 0, 0
	for i < len(a.Care) && j < len(b.Care) {
		switch {
		case a.Care[i].Pos < b.Care[j].Pos:
			i++
		case a.Care[i].Pos > b.Care[j].Pos:
			j++
		default:
			if !a.Care[i].Sym.CompatibleWith(b.Care[j].Sym) {
				return true
			}
			i++
			j++
		}
	}
	i, j = 0, 0
	for i < len(a.Bus) && j < len(b.Bus) {
		switch {
		case a.Bus[i].Line < b.Bus[j].Line:
			i++
		case a.Bus[i].Line > b.Bus[j].Line:
			j++
		default:
			if a.Bus[i].Driver != b.Bus[j].Driver {
				return true
			}
			i++
			j++
		}
	}
	return false
}

func TestShardComponentsNeverConflict(t *testing.T) {
	cases := []struct {
		name string
		cfg  GenConfig
	}{
		{"default", GenConfig{N: 600, Seed: 11}},
		{"no-bus-no-ext", GenConfig{N: 600, Seed: 12, BusProb: -1, ExternalProb: -1}},
		{"bus-heavy", GenConfig{N: 400, Seed: 13, BusProb: 1.0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, patterns, plan := planFor(t, "d695", tc.cfg, 8)
			checkPlanShape(t, patterns, plan, 8)
			for si := 0; si < len(plan.Shards); si++ {
				for sj := si + 1; sj < len(plan.Shards); sj++ {
					for _, a := range plan.Shards[si] {
						for _, b := range plan.Shards[sj] {
							if conflicts(patterns[a], patterns[b]) {
								t.Fatalf("cross-shard conflict: pattern %d (shard %d) vs %d (shard %d)", a, si, b, sj)
							}
						}
					}
				}
			}
		})
	}
}

// TestShardPlanDeterministic pins that the plan is a pure function of
// the corpus — independent of call count or anything ambient.
func TestShardPlanDeterministic(t *testing.T) {
	sp, patterns, plan1 := planFor(t, "d695", GenConfig{N: 800, Seed: 21, BusProb: -1, ExternalProb: -1}, 8)
	plan2 := PlanShards(sp, patterns, 8)
	if plan1.Components != plan2.Components || len(plan1.Shards) != len(plan2.Shards) {
		t.Fatalf("plans differ in shape: %d/%d vs %d/%d components/shards",
			plan1.Components, len(plan1.Shards), plan2.Components, len(plan2.Shards))
	}
	for si := range plan1.Shards {
		if len(plan1.Shards[si]) != len(plan2.Shards[si]) {
			t.Fatalf("shard %d sizes differ", si)
		}
		for k := range plan1.Shards[si] {
			if plan1.Shards[si][k] != plan2.Shards[si][k] {
				t.Fatalf("shard %d entry %d differs: %d vs %d", si, k, plan1.Shards[si][k], plan2.Shards[si][k])
			}
		}
	}
}

// TestShardEmptyPatterns: patterns with no care and no bus conflict
// with nothing; they must still be planned (exactly once) and must not
// union unrelated components together.
func TestShardEmptyPatterns(t *testing.T) {
	s := soc.MustLoadBenchmark("d695")
	sp := NewSpace(s)
	base, err := Generate(s, GenConfig{N: 60, Seed: 31, BusProb: -1, ExternalProb: -1})
	if err != nil {
		t.Fatal(err)
	}
	patterns := append([]*Pattern{{VictimPos: -1, VictimCore: -1, Weight: 1}}, base...)
	patterns = append(patterns, &Pattern{VictimPos: -1, VictimCore: -1, Weight: 1})
	plan := PlanShards(sp, patterns, 4)
	checkPlanShape(t, patterns, plan, 4)
	withCare := PlanShards(sp, base, 4)
	if plan.Components != withCare.Components+1 {
		t.Fatalf("empty patterns should form exactly one extra component: %d vs %d+1", plan.Components, withCare.Components)
	}
}

// TestShardBusDriverRule: a bus line driven by a single core glues
// nothing (its users can share a bin), while a mixed-driver line joins
// every user into one component.
func TestShardBusDriverRule(t *testing.T) {
	s := soc.MustLoadBenchmark("d695")
	sp := NewSpace(s)
	mk := func(pos int32, sym Symbol, line, driver int32) *Pattern {
		return &Pattern{
			Care:       []Care{{Pos: pos, Sym: sym}},
			Bus:        []BusUse{{Line: line, Driver: driver}},
			VictimPos:  pos,
			VictimCore: -1,
			Weight:     1,
		}
	}
	// Two patterns on line 0, same driver, care in far-apart words.
	pure := []*Pattern{mk(0, Zero, 0, 1), mk(512, Zero, 0, 1)}
	if plan := PlanShards(sp, pure, 8); plan.Components != 2 {
		t.Fatalf("pure same-driver line glued users: %d components, want 2", plan.Components)
	}
	// Same, but the drivers differ: one component.
	mixed := []*Pattern{mk(0, Zero, 0, 1), mk(512, Zero, 0, 2)}
	if plan := PlanShards(sp, mixed, 8); plan.Components != 1 {
		t.Fatalf("mixed-driver line did not glue users: %d components, want 1", plan.Components)
	}
	// Three users: two distinct drivers plus a repeat of the first —
	// all three are one component (any pair can conflict via the line).
	three := []*Pattern{mk(0, Zero, 0, 1), mk(512, Zero, 0, 2), mk(1024, Zero, 0, 1)}
	if plan := PlanShards(sp, three, 8); plan.Components != 1 {
		t.Fatalf("mixed line with repeat driver: %d components, want 1", plan.Components)
	}
}

// TestShardMaxShardsClamp: more components than maxShards must fold
// deterministically into exactly maxShards shards.
func TestShardMaxShardsClamp(t *testing.T) {
	_, patterns, plan := planFor(t, "d695", GenConfig{N: 500, Seed: 41, BusProb: -1, ExternalProb: -1}, 3)
	if plan.Components < 4 {
		t.Skipf("corpus produced only %d components", plan.Components)
	}
	if len(plan.Shards) != 3 {
		t.Fatalf("%d shards, want exactly 3 with %d components", len(plan.Shards), plan.Components)
	}
	checkPlanShape(t, patterns, plan, 3)
}
