package sifault

import (
	"strings"
	"testing"
)

// TestSpaceLookupErrors covers the error-returning lookup variants for
// untrusted input: unknown core IDs and out-of-range positions come
// back as errors, while the panicking variants stay consistent with
// them on valid input.
func TestSpaceLookupErrors(t *testing.T) {
	sp := NewSpace(twoCoreSOC())

	for _, id := range []int{0, 3, -1, 42} {
		if _, _, err := sp.RangeOf(id); err == nil || !strings.Contains(err.Error(), "not in space") {
			t.Errorf("RangeOf(%d) err = %v, want unknown-core error", id, err)
		}
	}
	for _, id := range sp.CoreOrder() {
		start, n, err := sp.RangeOf(id)
		if err != nil {
			t.Fatalf("RangeOf(%d) err = %v", id, err)
		}
		if s2, n2 := sp.Range(id); s2 != start || n2 != n {
			t.Errorf("Range(%d) = (%d,%d), RangeOf = (%d,%d)", id, s2, n2, start, n)
		}
	}

	for _, pos := range []int32{-1, int32(sp.Total()), int32(sp.Total()) + 7} {
		if _, err := sp.CoreAtPos(pos); err == nil || !strings.Contains(err.Error(), "outside space") {
			t.Errorf("CoreAtPos(%d) err = %v, want out-of-range error", pos, err)
		}
	}
	for pos := int32(0); pos < int32(sp.Total()); pos++ {
		id, err := sp.CoreAtPos(pos)
		if err != nil {
			t.Fatalf("CoreAtPos(%d) err = %v", pos, err)
		}
		if got := sp.CoreAt(pos); got != id {
			t.Errorf("CoreAt(%d) = %d, CoreAtPos = %d", pos, got, id)
		}
	}
}

// TestSpaceLookupPanickingVariants pins the documented contract of the
// trusted-input variants: they panic rather than silently misbehave.
func TestSpaceLookupPanickingVariants(t *testing.T) {
	sp := NewSpace(twoCoreSOC())
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Range(99)", func() { sp.Range(99) })
	mustPanic("CoreAt(-5)", func() { sp.CoreAt(-5) })
}
