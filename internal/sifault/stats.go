package sifault

import (
	"fmt"
	"sort"
	"strings"
)

// SetStats summarizes a pattern set: distributions of care bits,
// aggressors, bus usage and victim cores. Used by sigen -stats and by
// calibration tests.
type SetStats struct {
	Patterns    int
	TotalWeight int64

	// CareBits is the distribution of determined positions per pattern.
	CareBits Distribution

	// Transitions is the distribution of transition symbols (↑/↓) per
	// pattern — for freshly generated patterns, the aggressors plus a
	// transitioning victim.
	Transitions Distribution

	// BusLines is the distribution of occupied bus lines per pattern.
	BusLines Distribution

	// BusUsing is the number of patterns occupying at least one line.
	BusUsing int

	// VictimsPerCore maps core ID to the number of patterns whose
	// victim lives there (merged patterns with no victim are skipped).
	VictimsPerCore map[int]int
}

// Distribution is a simple integer sample summary.
type Distribution struct {
	Min, Max int
	Sum      int64
	N        int
}

// Add folds one sample into the distribution.
func (d *Distribution) Add(v int) {
	if d.N == 0 || v < d.Min {
		d.Min = v
	}
	if d.N == 0 || v > d.Max {
		d.Max = v
	}
	d.Sum += int64(v)
	d.N++
}

// Mean returns the sample mean (0 for an empty distribution).
func (d Distribution) Mean() float64 {
	if d.N == 0 {
		return 0
	}
	return float64(d.Sum) / float64(d.N)
}

// String implements fmt.Stringer.
func (d Distribution) String() string {
	return fmt.Sprintf("min=%d mean=%.1f max=%d", d.Min, d.Mean(), d.Max)
}

// Analyze computes SetStats for a pattern set.
func Analyze(patterns []*Pattern) SetStats {
	st := SetStats{Patterns: len(patterns), VictimsPerCore: map[int]int{}}
	for _, p := range patterns {
		st.TotalWeight += int64(p.Weight)
		st.CareBits.Add(len(p.Care))
		tr := 0
		for _, c := range p.Care {
			if c.Sym == Rise || c.Sym == Fall {
				tr++
			}
		}
		st.Transitions.Add(tr)
		st.BusLines.Add(len(p.Bus))
		if len(p.Bus) > 0 {
			st.BusUsing++
		}
		if p.VictimCore >= 0 {
			st.VictimsPerCore[int(p.VictimCore)]++
		}
	}
	return st
}

// Format renders the statistics as a short report.
func (st SetStats) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d patterns (total weight %d)\n", st.Patterns, st.TotalWeight)
	fmt.Fprintf(&b, "  care bits:   %s\n", st.CareBits)
	fmt.Fprintf(&b, "  transitions: %s\n", st.Transitions)
	if st.Patterns > 0 {
		fmt.Fprintf(&b, "  bus usage:   %d/%d patterns (%.0f%%), lines %s\n",
			st.BusUsing, st.Patterns, 100*float64(st.BusUsing)/float64(st.Patterns), st.BusLines)
	}
	if len(st.VictimsPerCore) > 0 {
		ids := make([]int, 0, len(st.VictimsPerCore))
		for id := range st.VictimsPerCore {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		b.WriteString("  victims per core:")
		for _, id := range ids {
			fmt.Fprintf(&b, " %d:%d", id, st.VictimsPerCore[id])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
