// Package sifault defines signal-integrity (SI) test patterns for
// core-external SOC interconnects, the position space they live in, the
// random pattern generator used by the paper's experiments, and the
// pattern-count formulas of the maximal-aggressor (MA) and
// multiple-transition (MT) fault models.
//
// An SI test pattern (Table 1 of the paper) assigns one of five symbols
// to every wrapper output cell (WOC) of every core:
//
//	x  don't care
//	0  stays low across both cycles of the vector pair
//	1  stays high
//	↑  positive transition
//	↓  negative transition
//
// plus a postfix over the shared functional bus marking which bus lines
// the pattern occupies. Patterns are stored sparsely: real SI patterns
// involve one victim and a handful of aggressors, so almost every
// position is x.
package sifault

import (
	"fmt"
	"sort"
	"strings"

	"sitam/internal/soc"
)

// Symbol is the per-position state of an SI test pattern.
type Symbol uint8

// The five pattern symbols of Table 1.
const (
	X    Symbol = iota // don't care
	Zero               // steady 0
	One                // steady 1
	Rise               // positive transition
	Fall               // negative transition
)

// String implements fmt.Stringer using the paper's notation.
func (s Symbol) String() string {
	switch s {
	case X:
		return "x"
	case Zero:
		return "0"
	case One:
		return "1"
	case Rise:
		return "↑"
	case Fall:
		return "↓"
	}
	return fmt.Sprintf("Symbol(%d)", uint8(s))
}

// CompatibleWith reports whether two symbols may occupy the same position
// of a merged pattern: don't-cares are compatible with everything, and
// every determined symbol only with itself.
func (s Symbol) CompatibleWith(o Symbol) bool {
	return s == X || o == X || s == o
}

// Intersect returns the merged symbol. It panics if the symbols are
// incompatible; callers check CompatibleWith first.
func (s Symbol) Intersect(o Symbol) Symbol {
	switch {
	case s == X:
		return o
	case o == X || s == o:
		return s
	}
	panic(fmt.Sprintf("sifault: intersecting incompatible symbols %v and %v", s, o))
}

// Care is one determined position of a sparse pattern.
type Care struct {
	Pos int32  // global WOC position
	Sym Symbol // determined symbol (never X)
}

// BusUse records that a pattern occupies one shared-bus line, and which
// core's boundary drives it. Patterns occupying the same line from
// different cores must not be merged (Section 3, Test Pattern Count
// Reduction).
type BusUse struct {
	Line   int32 // bus line index, 0-based
	Driver int32 // ID of the driving core
}

// Pattern is a sparse SI test pattern.
type Pattern struct {
	// Care holds the determined positions, sorted by Pos.
	Care []Care

	// Bus holds the occupied bus lines, sorted by Line.
	Bus []BusUse

	// VictimPos is the global position of the victim interconnect's
	// driving WOC, or -1 for a merged pattern.
	VictimPos int32

	// VictimCore is the ID of the victim's core, or -1 for a merged
	// pattern.
	VictimCore int32

	// Weight is the number of original (pre-compaction) patterns this
	// pattern represents; 1 for freshly generated patterns.
	Weight int32
}

// Clone returns a deep copy of the pattern.
func (p *Pattern) Clone() *Pattern {
	c := *p
	c.Care = append([]Care(nil), p.Care...)
	c.Bus = append([]BusUse(nil), p.Bus...)
	return &c
}

// SymbolAt returns the symbol at a global position (X if undetermined).
func (p *Pattern) SymbolAt(pos int32) Symbol {
	i := sort.Search(len(p.Care), func(i int) bool { return p.Care[i].Pos >= pos })
	if i < len(p.Care) && p.Care[i].Pos == pos {
		return p.Care[i].Sym
	}
	return X
}

// CareCores returns the sorted set of core IDs that own at least one
// determined position of the pattern — the pattern's care cores.
func (p *Pattern) CareCores(sp *Space) []int {
	seen := make(map[int]struct{}, 4)
	for _, c := range p.Care {
		seen[sp.CoreAt(c.Pos)] = struct{}{}
	}
	out := make([]int, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Validate checks internal invariants: sorted unique care positions
// within the space, no X symbols stored, sorted unique bus lines within
// the bus width.
func (p *Pattern) Validate(sp *Space) error {
	for i, c := range p.Care {
		if c.Sym == X {
			return fmt.Errorf("sifault: pattern stores X at position %d", c.Pos)
		}
		if c.Pos < 0 || int(c.Pos) >= sp.Total() {
			return fmt.Errorf("sifault: position %d outside space of %d WOCs", c.Pos, sp.Total())
		}
		if i > 0 && p.Care[i-1].Pos >= c.Pos {
			return fmt.Errorf("sifault: care positions not strictly sorted at index %d", i)
		}
	}
	for i, b := range p.Bus {
		if b.Line < 0 || int(b.Line) >= sp.BusWidth() {
			return fmt.Errorf("sifault: bus line %d outside %d-bit bus", b.Line, sp.BusWidth())
		}
		if i > 0 && p.Bus[i-1].Line >= b.Line {
			return fmt.Errorf("sifault: bus lines not strictly sorted at index %d", i)
		}
	}
	if p.Weight < 1 {
		return fmt.Errorf("sifault: pattern weight %d < 1", p.Weight)
	}
	return nil
}

// Format renders the pattern in the style of Table 1: one symbol per WOC
// position grouped by core, then the bus postfix. Intended for small
// illustrative SOCs; the output length is the total WOC count.
func (p *Pattern) Format(sp *Space) string {
	var b strings.Builder
	for _, id := range sp.CoreOrder() {
		start, n := sp.Range(id)
		b.WriteString("|")
		for i := 0; i < n; i++ {
			b.WriteString(p.SymbolAt(int32(start + i)).String())
		}
	}
	b.WriteString("‖")
	used := make(map[int32]bool, len(p.Bus))
	for _, u := range p.Bus {
		used[u.Line] = true
	}
	for l := 0; l < sp.BusWidth(); l++ {
		if used[int32(l)] {
			b.WriteString("1")
		} else {
			b.WriteString("x")
		}
	}
	b.WriteString("|")
	return b.String()
}

// Space maps global WOC positions to cores. Position space is the
// concatenation of all cores' WOCs in core-list order.
type Space struct {
	order    []int // core IDs in position order
	starts   []int // starts[i] is the first position of order[i]; len = len(order)+1
	busWidth int
}

// NewSpace builds the WOC position space of an SOC.
func NewSpace(s *soc.SOC) *Space {
	sp := &Space{busWidth: s.BusWidth}
	pos := 0
	for _, c := range s.Cores() {
		sp.order = append(sp.order, c.ID)
		sp.starts = append(sp.starts, pos)
		pos += c.WOC()
	}
	sp.starts = append(sp.starts, pos)
	return sp
}

// Total returns the number of WOC positions.
func (sp *Space) Total() int { return sp.starts[len(sp.starts)-1] }

// BusWidth returns the shared-bus width of the space.
func (sp *Space) BusWidth() int { return sp.busWidth }

// CoreOrder returns the core IDs in position order.
func (sp *Space) CoreOrder() []int { return sp.order }

// Range returns the first position and the WOC count of the given core.
// It panics on unknown core IDs; use RangeOf when the ID comes from
// external input.
func (sp *Space) Range(coreID int) (start, n int) {
	start, n, err := sp.RangeOf(coreID)
	if err != nil {
		panic(err.Error())
	}
	return start, n
}

// RangeOf returns the first position and the WOC count of the given
// core, or an error for IDs not in the space. This is the lookup for
// untrusted core IDs (group files, caller-built groups); Range is the
// panicking variant for IDs the space itself produced.
func (sp *Space) RangeOf(coreID int) (start, n int, err error) {
	for i, id := range sp.order {
		if id == coreID {
			return sp.starts[i], sp.starts[i+1] - sp.starts[i], nil
		}
	}
	return 0, 0, fmt.Errorf("sifault: core %d not in space", coreID)
}

// CoreAt returns the ID of the core owning a global position. It panics
// on out-of-range positions; use CoreAtPos when the position comes from
// external input.
func (sp *Space) CoreAt(pos int32) int {
	id, err := sp.CoreAtPos(pos)
	if err != nil {
		panic(err.Error())
	}
	return id
}

// CoreAtPos returns the ID of the core owning a global position, or an
// error for positions outside the space. This is the lookup for
// untrusted positions (pattern files, caller-built patterns); CoreAt is
// the panicking variant for positions the space itself produced.
func (sp *Space) CoreAtPos(pos int32) (int, error) {
	i := sort.Search(len(sp.starts), func(i int) bool { return sp.starts[i] > int(pos) })
	if i == 0 || int(pos) >= sp.Total() || pos < 0 {
		return 0, fmt.Errorf("sifault: position %d outside space of %d WOCs", pos, sp.Total())
	}
	return sp.order[i-1], nil
}

// WOCOf returns the WOC count of a core in the space.
func (sp *Space) WOCOf(coreID int) int {
	_, n := sp.Range(coreID)
	return n
}
