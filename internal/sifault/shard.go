package sifault

import "sort"

// Conflict-component sharding of a pattern corpus for parallel
// compaction (internal/compaction).
//
// Two patterns can only conflict — and therefore only influence each
// other's greedy first-fit placement — when they share a care POSITION
// or occupy the same shared-bus line from different driving cores.
// (Sharing a position with compatible symbols is glued too — the
// partition is symbol-blind, which is conservative and safe.) Patterns
// on the same line from the SAME driver never conflict through that
// line, so a pure single-driver line does not glue its users together.
//
// The transitive closure of that relation partitions the corpus into
// conflict components. First-fit binning respects the partition
// exactly: the bin index a pattern receives from serial first-fit over
// the whole stream equals its bin index from first-fit over its
// component alone, because bins never hold cross-component conflicts —
// a bin either contains a member of the pattern's component (and the
// local stream replays the same accept/reject verdicts in the same
// order) or accepts the pattern outright. Consequently global bin b is
// the disjoint union of every component's local bin b, and a sharded
// run that merges per-shard bins index-by-index is byte-identical to
// the serial result at any worker count. internal/compaction relies on
// this invariant; TestShardComponentsNeverConflict pins the
// no-cross-component-conflict half, and the compaction differential
// suite pins the end-to-end identity.

// ShardPlan describes a deterministic partition of a pattern corpus
// into independently compactable shards.
type ShardPlan struct {
	// Shards holds, per shard, the indices into the planned pattern
	// slice, ascending. Every input index appears in exactly one
	// shard. Shards are ordered by their smallest pattern index.
	Shards [][]int32

	// Components is the number of conflict components found (>= the
	// number of shards).
	Components int
}

// uf is a plain union-find with path halving.
type uf struct{ parent []int32 }

func newUF(n int) *uf {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	return &uf{parent: p}
}

func (u *uf) find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *uf) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

// PlanShards partitions patterns into at most maxShards conflict-closed
// shards: patterns from different shards are never incompatible, so
// each shard can be first-fit compacted independently and the per-shard
// bins merged index-by-index without changing a single output bit (see
// the package comment above). Components are balanced across shards by
// total care size, deterministically — the plan depends only on the
// pattern slice, never on worker count or scheduling. Patterns with no
// care data and no bus occupation conflict with nothing and are
// gathered in the first shard.
func PlanShards(sp *Space, patterns []*Pattern, maxShards int) ShardPlan {
	if maxShards < 1 {
		maxShards = 1
	}
	nPos := sp.Total()
	nBus := sp.BusWidth()

	// Pre-scan: find the lines that ever see two distinct drivers. Only
	// those glue their users together — any two users of a mixed line
	// either conflict directly (different drivers) or can be bridged by
	// a third user with yet another driver, so the safe closure unions
	// them all. A line driven by a single core throughout can never
	// carry a conflict and glues nothing.
	lineDriver := make([]int32, nBus)
	lineSeen := make([]bool, nBus)
	mixed := make([]bool, nBus)
	for _, p := range patterns {
		for _, b := range p.Bus {
			if !lineSeen[b.Line] {
				lineSeen[b.Line] = true
				lineDriver[b.Line] = b.Driver
			} else if lineDriver[b.Line] != b.Driver {
				mixed[b.Line] = true
			}
		}
	}

	// Union-find node space: one node per WOC position plus one per bus
	// line (the line nodes matter only for mixed lines).
	u := newUF(nPos + nBus)

	anchor := make([]int32, len(patterns)) // representative node per pattern, -1 if none
	for pi, p := range patterns {
		first := int32(-1)
		for _, c := range p.Care {
			if first < 0 {
				first = c.Pos
			} else {
				u.union(first, c.Pos)
			}
		}
		for _, b := range p.Bus {
			if !mixed[b.Line] {
				continue
			}
			n := int32(nPos) + b.Line
			if first < 0 {
				first = n
			} else {
				u.union(first, n)
			}
		}
		anchor[pi] = first
	}

	// Gather components in first-pattern-index order.
	compOf := make(map[int32]int32)
	var compPatterns [][]int32
	var compSize []int64
	for pi, p := range patterns {
		a := anchor[pi]
		if a < 0 {
			a = -1 // all empty patterns share one pseudo-component
		} else {
			a = u.find(a)
		}
		ci, ok := compOf[a]
		if !ok {
			ci = int32(len(compPatterns))
			compOf[a] = ci
			compPatterns = append(compPatterns, nil)
			compSize = append(compSize, 0)
		}
		compPatterns[ci] = append(compPatterns[ci], int32(pi))
		compSize[ci] += int64(len(p.Care) + len(p.Bus) + 1)
	}
	nComp := len(compPatterns)

	nShards := nComp
	if nShards > maxShards {
		nShards = maxShards
	}
	if nShards == 0 {
		return ShardPlan{Components: 0}
	}

	// Balance components over shards by size: biggest first, each to
	// the least-loaded shard (ties to the lowest shard index). Sorting
	// is by (size desc, component index asc) — fully deterministic.
	order := make([]int32, nComp)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if compSize[a] != compSize[b] {
			return compSize[a] > compSize[b]
		}
		return a < b
	})
	load := make([]int64, nShards)
	shardOf := make([]int32, nComp)
	for _, ci := range order {
		best := 0
		for s := 1; s < nShards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		shardOf[ci] = int32(best)
		load[best] += compSize[ci]
	}

	shards := make([][]int32, nShards)
	for ci, idxs := range compPatterns {
		s := shardOf[ci]
		shards[s] = append(shards[s], idxs...)
	}
	// Each shard's indices ascending, shards ordered by smallest index.
	// Drop empty shards (when components cluster onto few shards).
	out := shards[:0]
	for _, s := range shards {
		if len(s) > 0 {
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return ShardPlan{Shards: out, Components: nComp}
}
