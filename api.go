// Package sitam is a library for system-on-chip (SOC) test access
// mechanism (TAM) optimization that accounts for interconnect
// signal-integrity (SI) test time, reproducing "SOC Test Architecture
// Optimization for Signal Integrity Faults on Core-External
// Interconnects" (Xu, Zhang, Chakrabarty — DAC 2007).
//
// The package is a facade over the implementation packages: it
// re-exports the SOC model and ITC'02-style benchmark parser, the
// randomized and topology-driven SI pattern generators, the
// two-dimensional test-set compaction pipeline, the SI test scheduler
// (Algorithm 1), the SI-aware TAM optimizer (Algorithm 2) and the
// TR-Architect baseline.
//
// A minimal end-to-end run:
//
//	s, _ := sitam.LoadBenchmark("p93791")
//	patterns, _ := sitam.GeneratePatterns(s, sitam.GenConfig{N: 10000, Seed: 1})
//	groups, _ := sitam.BuildGroups(s, patterns, sitam.GroupingOptions{Parts: 4, Seed: 1})
//	res, _ := sitam.Optimize(s, 32, groups.Groups, sitam.DefaultModel())
//	fmt.Println(res.Breakdown.TimeSOC)
package sitam

import (
	"io"

	"sitam/internal/core"
	"sitam/internal/experiments"
	"sitam/internal/sifault"
	"sitam/internal/sischedule"
	"sitam/internal/soc"
	"sitam/internal/tam"
	"sitam/internal/topology"
	"sitam/internal/trarchitect"
	"sitam/internal/wrapper"
)

// SOC model and benchmark I/O.
type (
	// SOC is a core-based system-on-chip design.
	SOC = soc.SOC
	// Core is one wrapped embedded core.
	Core = soc.Core
)

// ParseSOC reads an ITC'02-style .soc description.
func ParseSOC(r io.Reader) (*SOC, error) { return soc.Parse(r) }

// WriteSOC serializes an SOC in the format ParseSOC reads.
func WriteSOC(w io.Writer, s *SOC) error { return soc.Write(w, s) }

// LoadBenchmark loads an embedded benchmark SOC ("p34392" or "p93791").
func LoadBenchmark(name string) (*SOC, error) { return soc.LoadBenchmark(name) }

// Benchmarks lists the embedded benchmark names.
func Benchmarks() []string { return soc.Benchmarks() }

// SI test patterns.
type (
	// Pattern is a sparse SI test pattern over the SOC's wrapper
	// output cells plus a shared-bus postfix.
	Pattern = sifault.Pattern
	// GenConfig parameterizes the randomized pattern generator used by
	// the paper's experiments.
	GenConfig = sifault.GenConfig
	// PatternSpace maps global pattern positions to cores.
	PatternSpace = sifault.Space
)

// GeneratePatterns produces random SI test patterns per the paper's
// experimental protocol (one victim, 2-6 aggressors, shared-bus usage).
func GeneratePatterns(s *SOC, cfg GenConfig) ([]*Pattern, error) {
	return sifault.Generate(s, cfg)
}

// NewPatternSpace builds the WOC position space of an SOC.
func NewPatternSpace(s *SOC) *PatternSpace { return sifault.NewSpace(s) }

// Interconnect topologies and deterministic fault-model test sets.
type (
	// Topology is a core-external interconnect netlist.
	Topology = topology.Topology
	// Net is one interconnect of a Topology.
	Net = topology.Net
	// TopologyConfig parameterizes RandomTopology.
	TopologyConfig = topology.RandomConfig
)

// RandomTopology builds a random plausible interconnect netlist.
func RandomTopology(s *SOC, cfg TopologyConfig, seed int64) (*Topology, error) {
	return topology.Random(s, cfg, seed)
}

// MAPatterns synthesizes the maximal-aggressor test set of a topology.
func MAPatterns(t *Topology, k int) ([]*Pattern, error) { return topology.MAPatterns(t, k) }

// ReducedMTPatterns synthesizes the reduced multiple-transition test
// set with locality factor k, optionally capped.
func ReducedMTPatterns(t *Topology, k, maxPatterns int) ([]*Pattern, error) {
	return topology.ReducedMTPatterns(t, k, maxPatterns)
}

// Compaction pipeline and SI test groups.
type (
	// GroupingOptions parameterizes the two-dimensional compaction.
	GroupingOptions = core.GroupingOptions
	// GroupingResult is the outcome of BuildGroups.
	GroupingResult = core.GroupingResult
	// Group is one schedulable SI test group.
	Group = sischedule.Group
)

// BuildGroups runs the paper's two-dimensional SI test-set compaction:
// hypergraph partitioning of the cores plus greedy clique-cover
// compaction within each resulting group.
func BuildGroups(s *SOC, patterns []*Pattern, opts GroupingOptions) (*GroupingResult, error) {
	return core.BuildGroups(s, patterns, opts)
}

// Scheduling and cost model.
type (
	// Model holds the per-pattern SI shift cost constants.
	Model = sischedule.Model
	// Schedule is a scheduled set of SI test groups.
	Schedule = sischedule.Schedule
	// Architecture is a TestRail TAM architecture.
	Architecture = tam.Architecture
	// Rail is one TestRail.
	Rail = tam.Rail
)

// DefaultModel returns the SI cost constants the experiments use.
func DefaultModel() Model { return sischedule.DefaultModel() }

// ScheduleSI schedules SI test groups on an architecture (Algorithm 1)
// and returns the schedule with T_soc_si.
func ScheduleSI(a *Architecture, groups []*Group, m Model) (*Schedule, error) {
	return sischedule.ScheduleSITest(a, groups, m)
}

// ScheduleSIPower is ScheduleSI under a test power ceiling: the summed
// boundary-cell activity of concurrently running groups never exceeds
// budget (<= 0 means unlimited).
func ScheduleSIPower(a *Architecture, groups []*Group, m Model, budget int64) (*Schedule, error) {
	return sischedule.ScheduleSITestPower(a, groups, m, budget)
}

// ExactScheduleSI returns the provably minimal SI testing time for at
// most sischedule.MaxExactGroups groups, via branch and bound. Used to
// audit Algorithm 1's schedules.
func ExactScheduleSI(a *Architecture, groups []*Group, m Model) (int64, error) {
	t, _, err := sischedule.ExactSchedule(a, groups, m)
	return t, err
}

// Optimization.
type (
	// Result is an optimized architecture with its time breakdown.
	Result = core.Result
	// Breakdown reports T_in, T_si and their sum.
	Breakdown = core.Breakdown
)

// Optimize runs the paper's SI-aware TAM_Optimization (Algorithm 2).
func Optimize(s *SOC, wmax int, groups []*Group, m Model) (*Result, error) {
	return core.TAMOptimization(s, wmax, groups, m)
}

// OptimizeBaseline runs the SI-oblivious TR-Architect baseline and then
// schedules the SI groups on the resulting architecture (the paper's
// T_[8] protocol).
func OptimizeBaseline(s *SOC, wmax int, groups []*Group, m Model) (*Result, error) {
	return trarchitect.OptimizeThenScheduleSI(s, wmax, groups, m)
}

// OptimizeILS runs the SI-aware optimization followed by the given
// number of iterated-local-search perturbation rounds (an extension
// beyond the paper's greedy fixed point; 0 kicks equals Optimize).
func OptimizeILS(s *SOC, wmax int, groups []*Group, m Model, kicks int, seed int64) (*Result, error) {
	eng, err := core.NewEngine(s, wmax, &core.SIEvaluator{Groups: groups, Model: m})
	if err != nil {
		return nil, err
	}
	arch, _, err := eng.OptimizeILS(kicks, seed)
	if err != nil {
		return nil, err
	}
	bd, sched, err := core.EvaluateBreakdown(arch, groups, m)
	if err != nil {
		return nil, err
	}
	return &Result{Architecture: arch, Breakdown: bd, Schedule: sched}, nil
}

// InTestLowerBound returns the Goel-Marinissen lower bound on the
// achievable SOC internal test time at the given total TAM width.
func InTestLowerBound(s *SOC, wmax int) (int64, error) {
	return trarchitect.LowerBound(s, wmax)
}

// InTestTime returns the InTest application time of one core at a TAM
// width, using Best Fit Decreasing wrapper design (the Combine
// procedure).
func InTestTime(c *Core, width int) (int64, error) { return wrapper.InTestTime(c, width) }

// Experiments.
type (
	// TableConfig parameterizes a Tables 2/3-style sweep.
	TableConfig = experiments.TableConfig
	// Table is the outcome of RunTable.
	Table = experiments.Table
)

// RunTable regenerates one of the paper's evaluation tables for s.
func RunTable(s *SOC, cfg TableConfig) (*Table, error) { return experiments.RunTable(s, cfg) }
