// Package sitam is a library for system-on-chip (SOC) test access
// mechanism (TAM) optimization that accounts for interconnect
// signal-integrity (SI) test time, reproducing "SOC Test Architecture
// Optimization for Signal Integrity Faults on Core-External
// Interconnects" (Xu, Zhang, Chakrabarty — DAC 2007).
//
// The package is a facade over the implementation packages: it
// re-exports the SOC model and ITC'02-style benchmark parser, the
// randomized and topology-driven SI pattern generators, the
// two-dimensional test-set compaction pipeline, the SI test scheduler
// (Algorithm 1), the SI-aware TAM optimizer (Algorithm 2) and the
// TR-Architect baseline.
//
// A minimal end-to-end run:
//
//	s, _ := sitam.LoadBenchmark("p93791")
//	patterns, _ := sitam.GeneratePatterns(s, sitam.GenConfig{N: 10000, Seed: 1})
//	groups, _ := sitam.BuildGroups(s, patterns, sitam.GroupingOptions{Parts: 4, Seed: 1})
//	res, _ := sitam.Optimize(s, 32, groups.Groups, sitam.DefaultModel())
//	fmt.Println(res.Breakdown.TimeSOC)
//
// # Cancellation, deadlines, and partial results
//
// Every expensive entry point has a context-aware variant (OptimizeCtx,
// OptimizeILSCtx, BuildGroupsCtx, GeneratePatternsCtx,
// ExactScheduleSICtx, RunTableCtx). They are anytime algorithms: when
// the context is cancelled or its deadline expires mid-search, the best
// valid result found so far is returned with its Partial flag set and a
// nil error; the context's error comes back only when nothing usable
// was produced. See the README section of the same name for details.
//
// # Observability
//
// The optimizers expose a structured search trace and a metrics
// registry through ParallelConfig: set Trace to a collector from
// NewTracer to record typed events (phase spans, candidate
// evaluations, merge decisions, ILS kicks, SI group placements,
// interruptions) and Metrics to a registry from NewMetricsRegistry to
// collect atomic counters and phase-duration histograms. Both default
// to nil and then cost nothing measurable. Engine-assembled Results
// always carry a Metrics snapshot with at least the "evals" counter.
// See the README section of the same name and the trace-schema section
// of DESIGN.md.
//
// # Panics
//
// The facade never panics: internal invariant violations are recovered
// at the API boundary and surfaced as errors wrapping ErrInternal.
package sitam

import (
	"context"
	"io"

	"sitam/internal/core"
	"sitam/internal/experiments"
	"sitam/internal/obs"
	"sitam/internal/sifault"
	"sitam/internal/sischedule"
	"sitam/internal/soc"
	"sitam/internal/tam"
	"sitam/internal/topology"
	"sitam/internal/trarchitect"
	"sitam/internal/wrapper"
)

// SOC model and benchmark I/O.
type (
	// SOC is a core-based system-on-chip design.
	SOC = soc.SOC
	// Core is one wrapped embedded core.
	Core = soc.Core
	// ConstraintSet is the optional scheduling-constraint stanza of an
	// SOC: a peak test power budget with per-core power overrides,
	// core-level precedence edges, and mutual-exclusion sets.
	ConstraintSet = soc.ConstraintSet
	// Precedence orders the SI tests of two cores.
	Precedence = soc.Precedence
)

// ErrInvalidConstraints reports a structurally invalid constraint set
// (unknown core references, cyclic precedence, negative budgets); test
// with errors.Is.
var ErrInvalidConstraints = soc.ErrInvalid

// ParseSOC reads an ITC'02-style .soc description.
func ParseSOC(r io.Reader) (s *SOC, err error) {
	defer guard(&err)
	return soc.Parse(r)
}

// WriteSOC serializes an SOC in the format ParseSOC reads.
func WriteSOC(w io.Writer, s *SOC) (err error) {
	defer guard(&err)
	return soc.Write(w, s)
}

// LoadBenchmark loads an embedded benchmark SOC ("p34392" or "p93791").
func LoadBenchmark(name string) (s *SOC, err error) {
	defer guard(&err)
	return soc.LoadBenchmark(name)
}

// Benchmarks lists the embedded benchmark names.
func Benchmarks() []string { return soc.Benchmarks() }

// SI test patterns.
type (
	// Pattern is a sparse SI test pattern over the SOC's wrapper
	// output cells plus a shared-bus postfix.
	Pattern = sifault.Pattern
	// GenConfig parameterizes the randomized pattern generator used by
	// the paper's experiments.
	GenConfig = sifault.GenConfig
	// PatternSpace maps global pattern positions to cores.
	PatternSpace = sifault.Space
)

// GeneratePatterns produces random SI test patterns per the paper's
// experimental protocol (one victim, 2-6 aggressors, shared-bus usage).
func GeneratePatterns(s *SOC, cfg GenConfig) (ps []*Pattern, err error) {
	defer guard(&err)
	return sifault.Generate(s, cfg)
}

// GeneratePatternsCtx is GeneratePatterns as an anytime algorithm: on
// cancellation or deadline expiry the prefix generated so far comes
// back with partial set and a nil error (the prefix is exactly what a
// full run with the same seed would have produced first). The context's
// error is returned only when no pattern was generated at all.
func GeneratePatternsCtx(ctx context.Context, s *SOC, cfg GenConfig) (ps []*Pattern, partial bool, err error) {
	defer guard(&err)
	return sifault.GenerateCtx(ctx, s, cfg)
}

// NewPatternSpace builds the WOC position space of an SOC.
func NewPatternSpace(s *SOC) *PatternSpace { return sifault.NewSpace(s) }

// Interconnect topologies and deterministic fault-model test sets.
type (
	// Topology is a core-external interconnect netlist.
	Topology = topology.Topology
	// Net is one interconnect of a Topology.
	Net = topology.Net
	// TopologyConfig parameterizes RandomTopology.
	TopologyConfig = topology.RandomConfig
)

// RandomTopology builds a random plausible interconnect netlist.
func RandomTopology(s *SOC, cfg TopologyConfig, seed int64) (t *Topology, err error) {
	defer guard(&err)
	return topology.Random(s, cfg, seed)
}

// MAPatterns synthesizes the maximal-aggressor test set of a topology.
func MAPatterns(t *Topology, k int) (ps []*Pattern, err error) {
	defer guard(&err)
	return topology.MAPatterns(t, k)
}

// ReducedMTPatterns synthesizes the reduced multiple-transition test
// set with locality factor k, optionally capped.
func ReducedMTPatterns(t *Topology, k, maxPatterns int) (ps []*Pattern, err error) {
	defer guard(&err)
	return topology.ReducedMTPatterns(t, k, maxPatterns)
}

// Compaction pipeline and SI test groups.
type (
	// GroupingOptions parameterizes the two-dimensional compaction.
	GroupingOptions = core.GroupingOptions
	// GroupingResult is the outcome of BuildGroups.
	GroupingResult = core.GroupingResult
	// Group is one schedulable SI test group.
	Group = sischedule.Group
)

// BuildGroups runs the paper's two-dimensional SI test-set compaction:
// hypergraph partitioning of the cores plus greedy clique-cover
// compaction within each resulting group.
func BuildGroups(s *SOC, patterns []*Pattern, opts GroupingOptions) (gr *GroupingResult, err error) {
	defer guard(&err)
	return core.BuildGroups(s, patterns, opts)
}

// BuildGroupsCtx is BuildGroups with graceful degradation under a done
// context: the partitioner skips refinement and the compaction passes
// remaining patterns through unmerged, and the result is marked Partial
// but remains a valid, schedulable grouping covering every input
// pattern. The context's error is returned only when it was done before
// any work started.
func BuildGroupsCtx(ctx context.Context, s *SOC, patterns []*Pattern, opts GroupingOptions) (gr *GroupingResult, err error) {
	defer guard(&err)
	return core.BuildGroupsCtx(ctx, s, patterns, opts)
}

// Scheduling and cost model.
type (
	// Model holds the per-pattern SI shift cost constants.
	Model = sischedule.Model
	// Schedule is a scheduled set of SI test groups.
	Schedule = sischedule.Schedule
	// Architecture is a TestRail TAM architecture.
	Architecture = tam.Architecture
	// Rail is one TestRail.
	Rail = tam.Rail
	// Constraints is a ConstraintSet compiled against a concrete group
	// list, in the form the schedulers consume. Nil = unconstrained.
	Constraints = sischedule.Constraints
)

// DefaultModel returns the SI cost constants the experiments use.
func DefaultModel() Model { return sischedule.DefaultModel() }

// ScheduleSI schedules SI test groups on an architecture (Algorithm 1)
// and returns the schedule with T_soc_si. Invalid architectures (e.g.
// cores missing from every rail, non-positive rail widths) are rejected
// with an error.
func ScheduleSI(a *Architecture, groups []*Group, m Model) (sch *Schedule, err error) {
	defer guard(&err)
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return sischedule.ScheduleSITest(a, groups, m)
}

// ScheduleSIPower is ScheduleSI under a test power ceiling: the summed
// boundary-cell activity of concurrently running groups never exceeds
// budget (<= 0 means unlimited).
func ScheduleSIPower(a *Architecture, groups []*Group, m Model, budget int64) (sch *Schedule, err error) {
	defer guard(&err)
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return sischedule.ScheduleSITestPower(a, groups, m, budget)
}

// CompileConstraints lifts the SOC's Constraints stanza onto the given
// group list. SOCs without a stanza compile to nil (unconstrained);
// structural errors (including core-level precedences that lift to a
// cyclic group order) wrap ErrInvalidConstraints.
func CompileConstraints(s *SOC, groups []*Group) (c *Constraints, err error) {
	defer guard(&err)
	return core.CompileSOCConstraints(s, groups)
}

// ScheduleSICons is ScheduleSI under a compiled constraint set: power
// budget, precedence and exclusion are honored by the same Algorithm 1
// list scheduler. A nil cons is exactly ScheduleSI.
func ScheduleSICons(a *Architecture, groups []*Group, m Model, cons *Constraints) (sch *Schedule, err error) {
	defer guard(&err)
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return sischedule.ScheduleSITestCons(a, groups, m, cons)
}

// ExactScheduleSI returns the provably minimal SI testing time for at
// most sischedule.MaxExactGroups groups, via branch and bound. Used to
// audit Algorithm 1's schedules.
func ExactScheduleSI(a *Architecture, groups []*Group, m Model) (t int64, err error) {
	defer guard(&err)
	if err := a.Validate(); err != nil {
		return 0, err
	}
	t, _, err = sischedule.ExactSchedule(a, groups, m)
	return t, err
}

// ExactScheduleSICtx is ExactScheduleSI as an anytime algorithm. On
// cancellation or deadline expiry the best complete schedule found so
// far is returned with partial set — a valid achievable makespan and
// an upper bound on the optimum, never below it. The context's error
// is returned only when no complete schedule was found.
func ExactScheduleSICtx(ctx context.Context, a *Architecture, groups []*Group, m Model) (t int64, partial bool, err error) {
	defer guard(&err)
	if err := a.Validate(); err != nil {
		return 0, false, err
	}
	t, _, partial, err = sischedule.ExactScheduleCtx(ctx, a, groups, m)
	return t, partial, err
}

// ExactScheduleSIConsCtx is ExactScheduleSICtx under a compiled
// constraint set: branch and bound over precedence-feasible schedules
// respecting the power budget and exclusions. A nil cons is exactly
// ExactScheduleSICtx.
func ExactScheduleSIConsCtx(ctx context.Context, a *Architecture, groups []*Group, m Model, cons *Constraints) (t int64, partial bool, err error) {
	defer guard(&err)
	if err := a.Validate(); err != nil {
		return 0, false, err
	}
	t, _, partial, err = sischedule.ExactScheduleCons(ctx, a, groups, m, cons)
	return t, partial, err
}

// Optimization.
type (
	// Result is an optimized architecture with its time breakdown.
	Result = core.Result
	// Breakdown reports T_in, T_si and their sum.
	Breakdown = core.Breakdown
	// ParallelConfig bundles the concurrency and memoization knobs of
	// the *With optimization entry points: Workers bounds concurrent
	// candidate evaluations (0 = GOMAXPROCS, 1 = serial) and CacheSize
	// caps the evaluation cache (0 = default, negative = disabled).
	ParallelConfig = core.ParallelConfig
	// CacheStats reports the evaluation cache's hit/miss/eviction
	// counters for a run.
	CacheStats = core.CacheStats
	// CacheFile is a persistent on-disk evaluation-cache journal; pass
	// one via ParallelConfig.Persist to seed a run's cache from disk
	// and append its new entries back. The caller owns the lifecycle
	// (OpenCacheFile / Close).
	CacheFile = core.CacheFile
)

// ErrCacheLocked reports that another process holds the cache file's
// advisory lock; callers typically degrade to memory-only caching.
var ErrCacheLocked = core.ErrCacheLocked

// OpenCacheFile opens (creating if absent) a persistent evaluation-
// cache file for ParallelConfig.Persist. The file is advisory-locked
// for exclusive use and repaired on open: a torn tail or corrupt
// record truncates to the last valid prefix, a version mismatch
// cold-starts, and a file that was never a cache is refused unchanged.
func OpenCacheFile(path string) (cf *CacheFile, err error) {
	defer guard(&err)
	return core.OpenCacheFile(path)
}

// Observability: the structured search trace and the metrics registry
// (see package obs for the event schema and determinism contract).
type (
	// TraceEvent is one structured search-trace record.
	TraceEvent = obs.Event
	// TraceEventType identifies one kind of search-trace event.
	TraceEventType = obs.Type
	// Tracer is the ordered search-trace collector; pass one via
	// ParallelConfig.Trace to record a run.
	Tracer = obs.Tracer
	// MetricsRegistry collects named atomic counters, gauges and
	// histograms; pass one via ParallelConfig.Metrics.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a plain-data copy of a registry's metrics,
	// attached to Result.Metrics.
	MetricsSnapshot = obs.Snapshot
	// StopCause classifies why an anytime run returned a partial
	// result: deadline expiry, cancellation, or budget exhaustion.
	StopCause = core.StopCause
)

// The StopCause values of partial results.
const (
	CauseNone     = core.CauseNone
	CauseDeadline = core.CauseDeadline
	CauseCancel   = core.CauseCancel
	CauseBudget   = core.CauseBudget
)

// ErrBudgetExhausted is the sentinel behind StopCause CauseBudget:
// the engine stopped because ParallelConfig.MaxEvals objective
// evaluations were spent.
var ErrBudgetExhausted = core.ErrBudgetExhausted

// NewTracer returns an empty search-trace collector for
// ParallelConfig.Trace.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewMetricsRegistry returns an empty metrics registry for
// ParallelConfig.Metrics.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// ReadTrace parses a JSONL search trace (as written by
// Tracer.WriteJSONL or tamopt -trace) strictly: unknown fields or
// event types are errors.
func ReadTrace(r io.Reader) (events []TraceEvent, err error) {
	defer guard(&err)
	return obs.ReadJSONL(r)
}

// ValidateTrace checks a trace against the event schema and the
// collector's contiguous-sequence invariant.
func ValidateTrace(events []TraceEvent) (err error) {
	defer guard(&err)
	return obs.ValidateTrace(events)
}

// Optimize runs the paper's SI-aware TAM_Optimization (Algorithm 2).
func Optimize(s *SOC, wmax int, groups []*Group, m Model) (res *Result, err error) {
	defer guard(&err)
	return core.TAMOptimization(s, wmax, groups, m)
}

// OptimizeCtx is Optimize as an anytime algorithm: on cancellation or
// deadline expiry mid-search the best architecture found so far is
// evaluated and returned with Result.Partial set and a nil error. The
// context's error comes back only when no valid architecture was
// produced at all (the context was done before the search started, or
// it fired while the start solution was still infeasible).
func OptimizeCtx(ctx context.Context, s *SOC, wmax int, groups []*Group, m Model) (res *Result, err error) {
	defer guard(&err)
	return core.TAMOptimizationCtx(ctx, s, wmax, groups, m)
}

// OptimizeWith is OptimizeCtx with parallel candidate evaluation and a
// memoized evaluation cache per cfg. The independent candidates of each
// optimization step fan out across a cfg.Workers-sized pool; selection
// is deterministic, so the returned architecture is byte-identical to a
// serial run's at any worker count. Result.Cache carries the cache
// counters of the run.
func OptimizeWith(ctx context.Context, s *SOC, wmax int, groups []*Group, m Model, cfg ParallelConfig) (res *Result, err error) {
	defer guard(&err)
	return core.TAMOptimizationWith(ctx, s, wmax, groups, m, cfg)
}

// OptimizeBaseline runs the SI-oblivious TR-Architect baseline and then
// schedules the SI groups on the resulting architecture (the paper's
// T_[8] protocol).
func OptimizeBaseline(s *SOC, wmax int, groups []*Group, m Model) (res *Result, err error) {
	defer guard(&err)
	return trarchitect.OptimizeThenScheduleSI(s, wmax, groups, m)
}

// OptimizeBaselineCtx is OptimizeBaseline as an anytime algorithm, with
// the same partial-result semantics as OptimizeCtx.
func OptimizeBaselineCtx(ctx context.Context, s *SOC, wmax int, groups []*Group, m Model) (res *Result, err error) {
	defer guard(&err)
	return trarchitect.OptimizeThenScheduleSICtx(ctx, s, wmax, groups, m)
}

// OptimizeBaselineWith is OptimizeBaselineCtx with parallel candidate
// evaluation and memoization per cfg, with the same determinism
// guarantee as OptimizeWith.
func OptimizeBaselineWith(ctx context.Context, s *SOC, wmax int, groups []*Group, m Model, cfg ParallelConfig) (res *Result, err error) {
	defer guard(&err)
	return trarchitect.OptimizeThenScheduleSIWith(ctx, s, wmax, groups, m, cfg)
}

// OptimizeILS runs the SI-aware optimization followed by the given
// number of iterated-local-search perturbation rounds (an extension
// beyond the paper's greedy fixed point; 0 kicks equals Optimize).
func OptimizeILS(s *SOC, wmax int, groups []*Group, m Model, kicks int, seed int64) (res *Result, err error) {
	defer guard(&err)
	return OptimizeILSCtx(context.Background(), s, wmax, groups, m, kicks, seed)
}

// OptimizeILSCtx is OptimizeILS as an anytime algorithm: the context is
// checked throughout the greedy optimization and between ILS kicks, and
// interruption mid-search returns the best architecture found so far
// with Result.Partial set and a nil error. The best-so-far objective is
// monotonically non-increasing, so a partial result's T_soc is never
// below what the complete run would achieve. The context's error comes
// back only when no valid architecture was produced.
func OptimizeILSCtx(ctx context.Context, s *SOC, wmax int, groups []*Group, m Model, kicks int, seed int64) (res *Result, err error) {
	defer guard(&err)
	cons, err := core.CompileSOCConstraints(s, groups)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(s, wmax, core.NewIncrementalSIEvaluatorCons(groups, m, cons))
	if err != nil {
		return nil, err
	}
	arch, _, st, err := eng.OptimizeILSCtx(ctx, kicks, seed)
	if err != nil {
		return nil, err
	}
	return eng.Finish(arch, st, groups, m, nil)
}

// OptimizeILSWith is OptimizeILSCtx with parallel candidate evaluation,
// memoization, and `restarts` independent ILS searches seeded seed,
// seed+1, ... whose best architecture wins (ties broken by the lowest
// seed, so the outcome is byte-identical at any worker count).
// restarts < 1 is an error; restarts == 1 matches OptimizeILSCtx run
// with cfg exactly. Result.Cache carries the cache counters of the run.
func OptimizeILSWith(ctx context.Context, s *SOC, wmax int, groups []*Group, m Model, kicks, restarts int, seed int64, cfg ParallelConfig) (res *Result, err error) {
	defer guard(&err)
	cons, err := core.CompileSOCConstraints(s, groups)
	if err != nil {
		return nil, err
	}
	eng, cache, err := core.NewParallelEngine(s, wmax, core.NewIncrementalSIEvaluatorCons(groups, m, cons), cfg)
	if err != nil {
		return nil, err
	}
	arch, _, st, err := eng.OptimizeILSRestartsCtx(ctx, kicks, restarts, seed)
	if err != nil {
		return nil, err
	}
	return eng.Finish(arch, st, groups, m, cache)
}

// InTestLowerBound returns the Goel-Marinissen lower bound on the
// achievable SOC internal test time at the given total TAM width.
func InTestLowerBound(s *SOC, wmax int) (t int64, err error) {
	defer guard(&err)
	return trarchitect.LowerBound(s, wmax)
}

// InTestTime returns the InTest application time of one core at a TAM
// width, using Best Fit Decreasing wrapper design (the Combine
// procedure).
func InTestTime(c *Core, width int) (t int64, err error) {
	defer guard(&err)
	return wrapper.InTestTime(c, width)
}

// Experiments.
type (
	// TableConfig parameterizes a Tables 2/3-style sweep.
	TableConfig = experiments.TableConfig
	// Table is the outcome of RunTable.
	Table = experiments.Table
)

// RunTable regenerates one of the paper's evaluation tables for s.
func RunTable(s *SOC, cfg TableConfig) (t *Table, err error) {
	defer guard(&err)
	return experiments.RunTable(s, cfg)
}

// RunTableCtx is RunTable with graceful degradation under a done
// context: the cells completed before the interruption come back in a
// Table marked Partial with a nil error (cells in flight are discarded,
// so every reported value is exact). The context's error is returned
// only when it fired before the first cell completed.
func RunTableCtx(ctx context.Context, s *SOC, cfg TableConfig) (t *Table, err error) {
	defer guard(&err)
	return experiments.RunTableCtx(ctx, s, cfg)
}
