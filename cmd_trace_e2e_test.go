package sitam

// End-to-end tests of the observability surface: the tamopt -trace |
// sitrace walkthrough from the README, the -stats metrics snapshot,
// and the -budget partial-result path.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"sitam/internal/report"
)

func TestE2ETraceWalkthrough(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "run.jsonl")
	jsonPath := filepath.Join(dir, "run.json")
	out := runTool(t, "tamopt", "-soc", "d695", "-w", "12", "-nr", "1500", "-g", "2",
		"-workers", "1", "-trace", trace, "-stats", "-json", jsonPath)
	if !strings.Contains(out, "run metrics:") || !strings.Contains(out, "evals") {
		t.Errorf("tamopt -stats output missing metrics:\n%s", out)
	}
	if !strings.Contains(out, "cache_hits") {
		t.Errorf("tamopt -stats output missing cache counters:\n%s", out)
	}

	// Schema validation via sitrace -check.
	out = runTool(t, "sitrace", "-check", trace)
	if !strings.Contains(out, "trace OK") {
		t.Errorf("sitrace -check output:\n%s", out)
	}

	// The summary reports phases and the convergence endpoint, which
	// must equal the timeSOC of the JSON report.
	f, err := os.Open(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := report.Read(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	out = runTool(t, "sitrace", trace)
	want := fmt.Sprintf("final best objective: %d", doc.TimeSOC)
	if !strings.Contains(out, want) {
		t.Errorf("sitrace summary missing %q:\n%s", want, out)
	}
	for _, section := range []string{"phases:", "si schedule", "candidates evaluated:", "cache:"} {
		if !strings.Contains(out, section) {
			t.Errorf("sitrace summary missing %q:\n%s", section, out)
		}
	}

	// The curve CSV ends at the same objective.
	out = runTool(t, "sitrace", "-curve", trace)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 2 || lines[0] != "seq,evals,best" {
		t.Fatalf("sitrace -curve output:\n%s", out)
	}
	if !strings.HasSuffix(lines[len(lines)-1], fmt.Sprintf(",%d", doc.TimeSOC)) {
		t.Errorf("curve ends with %q, want best %d", lines[len(lines)-1], doc.TimeSOC)
	}
}

// TestE2ETamoptBudget caps the evaluation budget: tamopt must still
// print a result, mark it partial with the budget cause, and exit with
// the documented partial-result code 3.
func TestE2ETamoptBudget(t *testing.T) {
	cmd := exec.Command(filepath.Join(binaries(t), "tamopt"),
		"-soc", "d695", "-w", "12", "-nr", "1000", "-g", "2", "-workers", "1", "-budget", "200")
	code, out := exitCode(t, cmd)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3 (partial)\n%s", code, out)
	}
	if !strings.Contains(out, "RESULT PARTIAL (budget)") {
		t.Errorf("output missing budget partial marker:\n%s", out)
	}
	if !strings.Contains(out, "T_soc") {
		t.Errorf("partial run printed no result:\n%s", out)
	}
}

func TestE2ESitraceRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte(`{"seq":0,"type":"nonsense"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(filepath.Join(binaries(t), "sitrace"), "-check", bad)
	code, out := exitCode(t, cmd)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "unknown event type") {
		t.Errorf("sitrace error output:\n%s", out)
	}
}
