package sitam

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestGuardConvertsPanics is the white-box contract of the recovery
// guard: a panic becomes an ErrInternal-wrapped error carrying the
// panic message and a stack snippet locating the fault, while normal
// returns (nil or not) pass through untouched.
func TestGuardConvertsPanics(t *testing.T) {
	boom := func() (err error) {
		defer guard(&err)
		panic("boom 42")
	}
	err := boom()
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	if !strings.Contains(err.Error(), "boom 42") {
		t.Errorf("error lost the panic message: %v", err)
	}
	if !strings.Contains(err.Error(), ".go:") {
		t.Errorf("error carries no stack snippet: %v", err)
	}
	if strings.Count(err.Error(), "\n") > 14 {
		t.Errorf("stack snippet not trimmed:\n%v", err)
	}

	ok := func() (err error) {
		defer guard(&err)
		return nil
	}
	if err := ok(); err != nil {
		t.Fatalf("guard disturbed a clean return: %v", err)
	}
	sentinel := errors.New("ordinary failure")
	fails := func() (err error) {
		defer guard(&err)
		return sentinel
	}
	if err := fails(); !errors.Is(err, sentinel) || errors.Is(err, ErrInternal) {
		t.Fatalf("guard disturbed an ordinary error: %v", err)
	}
}

// TestFacadePanicBoundary feeds facade functions inputs that trip
// internal invariants (nil dereferences) and checks the panic never
// escapes the public API: the caller sees ErrInternal instead of a
// crash.
func TestFacadePanicBoundary(t *testing.T) {
	if _, err := Optimize(nil, 16, nil, DefaultModel()); !errors.Is(err, ErrInternal) {
		t.Errorf("Optimize(nil SOC) err = %v, want ErrInternal", err)
	}
	if _, err := ExactScheduleSI(nil, nil, DefaultModel()); !errors.Is(err, ErrInternal) {
		t.Errorf("ExactScheduleSI(nil arch) err = %v, want ErrInternal", err)
	}
	if _, err := ScheduleSI(nil, nil, DefaultModel()); !errors.Is(err, ErrInternal) {
		t.Errorf("ScheduleSI(nil arch) err = %v, want ErrInternal", err)
	}
	if _, err := GeneratePatterns(nil, GenConfig{N: 1}); !errors.Is(err, ErrInternal) {
		t.Errorf("GeneratePatterns(nil SOC) err = %v, want ErrInternal", err)
	}
}

// TestCtxFacades exercises the context-aware facade variants end to
// end on a real benchmark: pre-cancelled contexts surface the context
// error, and a deadline expiring mid-optimization degrades to a valid
// partial Result.
func TestCtxFacades(t *testing.T) {
	s, err := LoadBenchmark("p34392")
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	if _, _, err := GeneratePatternsCtx(cancelled, s, GenConfig{N: 100, Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Errorf("GeneratePatternsCtx pre-cancelled err = %v", err)
	}
	if _, err := OptimizeCtx(cancelled, s, 16, nil, DefaultModel()); !errors.Is(err, context.Canceled) {
		t.Errorf("OptimizeCtx pre-cancelled err = %v", err)
	}
	if _, err := OptimizeILSCtx(cancelled, s, 16, nil, DefaultModel(), 3, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("OptimizeILSCtx pre-cancelled err = %v", err)
	}

	patterns, partial, err := GeneratePatternsCtx(context.Background(), s, GenConfig{N: 1000, Seed: 1})
	if err != nil || partial || len(patterns) != 1000 {
		t.Fatalf("GeneratePatternsCtx = (%d patterns, partial=%v, %v)", len(patterns), partial, err)
	}
	gr, err := BuildGroupsCtx(context.Background(), s, patterns, GroupingOptions{Parts: 2, Seed: 1})
	if err != nil || gr.Partial {
		t.Fatalf("BuildGroupsCtx = (partial=%v, %v)", gr != nil && gr.Partial, err)
	}

	// A deadline mid-search must yield a usable partial Result, not an
	// error: a huge kick budget guarantees the run cannot finish.
	ctx, cancelT := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancelT()
	res, err := OptimizeILSCtx(ctx, s, 16, gr.Groups, DefaultModel(), 1000000, 1)
	if err != nil {
		t.Fatalf("OptimizeILSCtx deadline run errored: %v", err)
	}
	if !res.Partial || res.Reason == "" {
		t.Fatalf("deadline run Result not flagged partial: %+v", res)
	}
	if err := res.Architecture.Validate(); err != nil {
		t.Fatalf("partial Result architecture invalid: %v", err)
	}

	// The exact scheduler facade: pre-cancelled context errors out...
	if _, _, err := ExactScheduleSICtx(cancelled, res.Architecture, gr.Groups, DefaultModel()); !errors.Is(err, context.Canceled) {
		t.Errorf("ExactScheduleSICtx pre-cancelled err = %v", err)
	}
	// ...and an unconstrained run matches the plain facade.
	exact, partial, err := ExactScheduleSICtx(context.Background(), res.Architecture, gr.Groups, DefaultModel())
	if err != nil || partial {
		t.Fatalf("ExactScheduleSICtx = (%d, partial=%v, %v)", exact, partial, err)
	}
	plain, err := ExactScheduleSI(res.Architecture, gr.Groups, DefaultModel())
	if err != nil || plain != exact {
		t.Fatalf("ExactScheduleSI = (%d, %v), ctx variant found %d", plain, err, exact)
	}
}
