package sitam

// Integration tests exercising the full pipeline across subsystem
// boundaries, including property-style tests over randomly generated
// SOCs.

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"sitam/internal/core"
	"sitam/internal/sischedule"
)

// randomSOC builds a structurally valid random SOC.
func randomSOC(rng *rand.Rand) *SOC {
	n := 3 + rng.Intn(8)
	s := &SOC{Name: fmt.Sprintf("rand%d", n), BusWidth: 8 * (1 + rng.Intn(4))}
	for id := 1; id <= n; id++ {
		c := &Core{
			ID:       id,
			Inputs:   1 + rng.Intn(40),
			Outputs:  2 + rng.Intn(40),
			Bidirs:   rng.Intn(5),
			Patterns: 1 + rng.Intn(300),
		}
		for j := rng.Intn(6); j > 0; j-- {
			c.ScanChains = append(c.ScanChains, 1+rng.Intn(200))
		}
		s.CoreList = append(s.CoreList, c)
	}
	return s
}

func TestPipelinePropertyRandomSOCs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSOC(rng)
		if err := s.Validate(); err != nil {
			t.Logf("seed %d: invalid SOC: %v", seed, err)
			return false
		}
		patterns, err := GeneratePatterns(s, GenConfig{N: 200, Seed: seed})
		if err != nil {
			t.Logf("seed %d: generate: %v", seed, err)
			return false
		}
		parts := 1 + rng.Intn(3)
		if parts > s.NumCores() {
			parts = s.NumCores()
		}
		gr, err := BuildGroups(s, patterns, GroupingOptions{Parts: parts, Seed: seed})
		if err != nil {
			t.Logf("seed %d: groups: %v", seed, err)
			return false
		}
		var weight int64
		for _, ps := range gr.GroupPatterns {
			for _, p := range ps {
				weight += int64(p.Weight)
			}
		}
		if weight != 200 {
			t.Logf("seed %d: weight %d != 200", seed, weight)
			return false
		}
		wmax := 1 + rng.Intn(2*s.NumCores())
		res, err := Optimize(s, wmax, gr.Groups, DefaultModel())
		if err != nil {
			t.Logf("seed %d: optimize: %v", seed, err)
			return false
		}
		if err := res.Architecture.Validate(); err != nil {
			t.Logf("seed %d: invalid architecture: %v", seed, err)
			return false
		}
		if res.Architecture.TotalWidth() > wmax {
			t.Logf("seed %d: width %d > %d", seed, res.Architecture.TotalWidth(), wmax)
			return false
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Logf("seed %d: invalid schedule: %v", seed, err)
			return false
		}
		if res.Breakdown.TimeSOC != res.Breakdown.TimeIn+res.Breakdown.TimeSI {
			t.Logf("seed %d: inconsistent breakdown", seed)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPipelineBothBenchmarksAllGroupings(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark pipeline is slow")
	}
	for _, name := range Benchmarks() {
		s, err := LoadBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		patterns, err := GeneratePatterns(s, GenConfig{N: 3000, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range []int{1, 2, 4, 8} {
			gr, err := BuildGroups(s, patterns, GroupingOptions{Parts: g, Seed: 9})
			if err != nil {
				t.Fatalf("%s g=%d: %v", name, g, err)
			}
			res, err := Optimize(s, 24, gr.Groups, DefaultModel())
			if err != nil {
				t.Fatalf("%s g=%d: %v", name, g, err)
			}
			if err := res.Architecture.Validate(); err != nil {
				t.Fatalf("%s g=%d: %v", name, g, err)
			}
			if err := res.Schedule.Validate(); err != nil {
				t.Fatalf("%s g=%d: %v", name, g, err)
			}
			// Scheduling the same groups on the same architecture again
			// must reproduce T_si exactly (determinism across the
			// subsystem boundary).
			sched, err := ScheduleSI(res.Architecture, gr.Groups, DefaultModel())
			if err != nil {
				t.Fatal(err)
			}
			if sched.TotalSI != res.Breakdown.TimeSI {
				t.Errorf("%s g=%d: re-schedule T_si %d != %d", name, g, sched.TotalSI, res.Breakdown.TimeSI)
			}
		}
	}
}

func TestSerialSchedulingNeverFaster(t *testing.T) {
	s, err := LoadBenchmark("p34392")
	if err != nil {
		t.Fatal(err)
	}
	patterns, err := GeneratePatterns(s, GenConfig{N: 2000, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := BuildGroups(s, patterns, GroupingOptions{Parts: 8, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(s, 32, gr.Groups, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	serial, err := sischedule.SerialTime(res.Architecture, gr.Groups, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if serial < res.Breakdown.TimeSI {
		t.Errorf("serial T_si %d beats overlapped %d", serial, res.Breakdown.TimeSI)
	}
}

func TestGroupingNeverLosesPatternsAcrossSeeds(t *testing.T) {
	s, err := LoadBenchmark("p93791")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 4; seed++ {
		patterns, err := GeneratePatterns(s, GenConfig{N: 1000, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range []int{1, 4} {
			gr, err := BuildGroups(s, patterns, GroupingOptions{Parts: g, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if gr.Stats.Original != 1000 {
				t.Errorf("seed %d g=%d: original %d", seed, g, gr.Stats.Original)
			}
			total := 0
			for _, grp := range gr.Groups {
				total += int(grp.Patterns)
			}
			if total != gr.TotalCompacted() {
				t.Errorf("seed %d g=%d: group counts %d != compacted %d", seed, g, total, gr.TotalCompacted())
			}
		}
	}
}

// TestBaselineMatchesEngineInTestObjective pins the relationship the
// tables rely on: the T_[8] column's InTest component is exactly what
// the InTest-only engine produced.
func TestBaselineMatchesEngineInTestObjective(t *testing.T) {
	s, err := LoadBenchmark("p34392")
	if err != nil {
		t.Fatal(err)
	}
	groups := []*Group{{Name: "g", Cores: s.SortedIDs(), Patterns: 100}}
	res, err := OptimizeBaseline(s, 24, groups, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(s, 24, core.InTestEvaluator{})
	if err != nil {
		t.Fatal(err)
	}
	_, obj, err := eng.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.TimeIn != obj {
		t.Errorf("baseline InTest %d != engine objective %d", res.Breakdown.TimeIn, obj)
	}
}
