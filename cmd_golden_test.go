package sitam

// Golden-file regression tests for the CLI tools: stdout of fixed-seed
// runs is compared byte-for-byte against files under testdata/golden.
// Regenerate with:
//
//	go test -run TestGolden -update
//
// Each case is also a CLI-level differential check: the same command
// re-run at a different -workers count must reproduce the golden
// stdout exactly (cache counters go to stderr, which is not golden).

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/golden")

// goldenRun executes a tool capturing stdout alone and returns it with
// the exit code; stderr is logged for diagnosis only.
func goldenRun(t *testing.T, name string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), name), args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%s %v: %v\nstderr: %s", name, args, err, stderr.String())
		}
		code = ee.ExitCode()
	}
	if stderr.Len() > 0 {
		t.Logf("%s stderr:\n%s", name, stderr.String())
	}
	return stdout.String(), code
}

// checkGolden compares got against testdata/golden/<file>, rewriting
// the file under -update.
func checkGolden(t *testing.T, file, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", file)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGolden -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("stdout differs from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// goldenCases are the fixed-seed CLI invocations under golden lockdown.
// wantCode is the expected exit status; workers sweeps re-run the same
// command at several -workers values, all of which must match the one
// golden file.
var goldenCases = []struct {
	name     string
	file     string
	tool     string
	args     []string
	wantCode int
	workers  []string // -workers values to sweep; empty = run args as-is once
}{
	{
		name: "tamopt_d695",
		file: "tamopt_d695.golden",
		tool: "tamopt",
		args: []string{"-soc", "d695", "-w", "12", "-nr", "1500", "-g", "2", "-seed", "1"},

		workers: []string{"1", "2", "8"},
	},
	{
		name: "tamopt_d695_ils_restarts",
		file: "tamopt_d695_ils_restarts.golden",
		tool: "tamopt",
		args: []string{"-soc", "d695", "-w", "12", "-nr", "1500", "-g", "2", "-seed", "1",
			"-ils", "3", "-restarts", "2"},

		workers: []string{"1", "8"},
	},
	{
		// -timeout 1ns expires before the first pattern is generated, so
		// the run deterministically takes the "nothing usable yet" path:
		// SOC summary, then the RESULT PARTIAL (deadline) marker, exit 3.
		name:     "tamopt_partial_deadline",
		file:     "tamopt_partial_deadline.golden",
		tool:     "tamopt",
		args:     []string{"-soc", "d695", "-w", "12", "-nr", "1500", "-g", "2", "-seed", "1", "-timeout", "1ns"},
		wantCode: 3,
		workers:  []string{"1", "8"},
	},
	{
		// Markdown output carries no elapsed-time line, so the quick
		// sweep is byte-stable (Format's header is not).
		name:    "socbench_quick_p34392",
		file:    "socbench_quick_p34392.golden",
		tool:    "socbench",
		args:    []string{"-quick", "-soc", "p34392", "-markdown", "-seed", "1"},
		workers: []string{"1", "8"},
	},
}

func TestGoldenCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("golden CLI runs take a few seconds")
	}
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			sweeps := tc.workers
			if len(sweeps) == 0 {
				sweeps = []string{""}
			}
			var first string
			for i, w := range sweeps {
				args := tc.args
				if w != "" {
					args = append(append([]string{}, args...), "-workers", w)
				}
				out, code := goldenRun(t, tc.tool, args...)
				if code != tc.wantCode {
					t.Fatalf("workers=%q: exit code %d, want %d\n%s", w, code, tc.wantCode, out)
				}
				if i == 0 {
					first = out
					checkGolden(t, tc.file, out)
					continue
				}
				if out != first {
					t.Errorf("workers=%q stdout differs from workers=%q:\n%s", w, sweeps[0], diffHint(first, out))
				}
			}
		})
	}
}

// diffHint points at the first line where two outputs diverge.
func diffHint(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n-%s\n+%s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
