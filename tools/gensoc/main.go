// Command gensoc regenerates the reconstructed p34392.soc and
// p93791.soc benchmark files embedded by internal/soc (d695.soc is
// hand-written). Run it from internal/soc/benchmarks, or via
// go:generate in package soc; the output is frozen into the
// repository.
//
// With -scenario it instead emits one randomized constrained-
// scheduling scenario (internal/scenario): a 100-1000-core SOC with a
// power/precedence/exclusion Constraints stanza, a fixed TestRail
// architecture and an SI test-group set, all derived from -seed:
//
//	gensoc -scenario -seed 42                       # to stdout
//	gensoc -scenario -seed 42 -min 10 -max 40 -o s.scenario
//
// The output is deterministic per (seed, min, max) and replayable with
// the scenario harness; see internal/scenario and DESIGN.md §12.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"sitam/internal/scenario"
)

type core struct {
	id, in, out, bidir int
	chains             []int
	patterns           int
}

// chainsFor splits total scan FFs into n chains with a deterministic
// +-8% sawtooth variation around the mean, keeping the sum exact.
func chainsFor(n, total int) []int {
	if n == 0 {
		return nil
	}
	mean := total / n
	out := make([]int, n)
	sum := 0
	for i := 0; i < n; i++ {
		delta := (i%5 - 2) * mean / 25 // -8%..+8% sawtooth
		out[i] = mean + delta
		if out[i] < 1 {
			out[i] = 1
		}
		sum += out[i]
	}
	out[0] += total - sum
	return out
}

// bottleneckChains builds a chain list with one dominant chain of length
// `longest` and the remainder split evenly.
func bottleneckChains(n, total, longest int) []int {
	rest := chainsFor(n-1, total-longest)
	return append([]int{longest}, rest...)
}

func write(name string, busWidth int, topIn, topOut int, cores []core) {
	var b strings.Builder
	fmt.Fprintf(&b, "# Reconstructed ITC'02-style benchmark %s.\n", name)
	fmt.Fprintf(&b, "# The original ITC'02 distribution is not redistributable here; this file\n")
	fmt.Fprintf(&b, "# reproduces the module count and qualitative test-volume structure used\n")
	fmt.Fprintf(&b, "# by the DAC'07 experiments (see DESIGN.md, Substitutions).\n")
	fmt.Fprintf(&b, "SocName %s\nBusWidth %d\nTotalModules %d\n", name, busWidth, len(cores)+1)
	fmt.Fprintf(&b, "\nModule 0\n  Name top\n  Inputs %d\n  Outputs %d\n  Bidirs 0\n", topIn, topOut)
	for _, c := range cores {
		fmt.Fprintf(&b, "\nModule %d\n  Inputs %d\n  Outputs %d\n  Bidirs %d\n", c.id, c.in, c.out, c.bidir)
		if len(c.chains) > 0 {
			fmt.Fprintf(&b, "  ScanChains %d :", len(c.chains))
			for _, l := range c.chains {
				fmt.Fprintf(&b, " %d", l)
			}
			fmt.Fprintln(&b)
		}
		fmt.Fprintf(&b, "  Patterns %d\n", c.patterns)
	}
	if err := os.WriteFile(name+".soc", []byte(b.String()), 0o644); err != nil {
		panic(err)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("gensoc: ")
	var (
		scen = flag.Bool("scenario", false, "emit one randomized constrained-scheduling scenario instead of the benchmark files")
		seed = flag.Int64("seed", 1, "scenario seed")
		min  = flag.Int("min", 0, "minimum core count (0 = scenario default, 100)")
		max  = flag.Int("max", 0, "maximum core count (0 = scenario default, 1000)")
		out  = flag.String("o", "", "scenario output file (default stdout)")
	)
	flag.Parse()
	if *scen {
		emitScenario(*seed, *min, *max, *out)
		return
	}
	writeBenchmarks()
}

func emitScenario(seed int64, min, max int, out string) {
	sc := scenario.GenerateConfig(scenario.Config{MinCores: min, MaxCores: max}, seed)
	if err := sc.Validate(); err != nil {
		log.Fatal(err)
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := scenario.Write(w, sc); err != nil {
		log.Fatal(err)
	}
}

func writeBenchmarks() {
	p34392 := []core{
		{1, 60, 40, 0, chainsFor(8, 2000), 420},
		{2, 100, 60, 0, chainsFor(10, 1800), 300},
		{3, 32, 32, 0, nil, 2000},
		{4, 54, 30, 0, chainsFor(6, 900), 526},
		{5, 80, 50, 0, chainsFor(12, 1440), 400},
		{6, 36, 36, 0, chainsFor(4, 400), 900},
		{7, 40, 23, 0, chainsFor(5, 1000), 700},
		{8, 64, 64, 0, nil, 4000},
		{9, 28, 17, 0, chainsFor(3, 270), 380},
		{10, 70, 40, 0, chainsFor(16, 4000), 250},
		{11, 90, 60, 0, chainsFor(20, 6000), 180},
		{12, 44, 35, 0, chainsFor(9, 1440), 520},
		{13, 24, 16, 0, chainsFor(2, 120), 150},
		{14, 50, 30, 0, chainsFor(7, 980), 640},
		{15, 100, 72, 0, chainsFor(14, 3080), 320},
		{16, 30, 20, 0, nil, 1200},
		{17, 66, 48, 0, chainsFor(11, 1430), 460},
		// Module 18 is the bottleneck core: one 800-FF chain bounds its
		// test time from below at ~680*801 cc regardless of TAM width.
		{18, 120, 72, 0, bottleneckChains(29, 8700, 800), 680},
		{19, 38, 26, 0, chainsFor(5, 550), 310},
	}
	write("p34392", 32, 43, 23, p34392)

	p93791 := []core{
		{1, 109, 32, 0, chainsFor(16, 4000), 409},
		{2, 60, 40, 0, chainsFor(8, 2000), 192},
		{3, 50, 50, 0, chainsFor(13, 2600), 216},
		{4, 40, 30, 0, chainsFor(10, 1500), 500},
		{5, 70, 106, 0, nil, 2048},
		{6, 84, 64, 0, bottleneckChains(23, 14000, 650), 218},
		{7, 36, 23, 0, chainsFor(12, 3000), 450},
		{8, 44, 35, 0, chainsFor(11, 2200), 330},
		{9, 60, 45, 0, chainsFor(9, 1800), 120},
		{10, 80, 64, 0, chainsFor(15, 4500), 601},
		{11, 90, 72, 0, chainsFor(20, 5000), 350},
		{12, 30, 20, 0, chainsFor(6, 1200), 760},
		{13, 100, 80, 0, chainsFor(24, 6000), 160},
		{14, 64, 64, 0, nil, 1024},
		{15, 56, 42, 0, chainsFor(12, 3600), 280},
		{16, 48, 36, 0, chainsFor(10, 2400), 95},
		{17, 72, 60, 0, chainsFor(16, 5200), 420},
		{18, 40, 32, 0, chainsFor(14, 2800), 230},
		{19, 28, 20, 0, chainsFor(8, 1700), 520},
		{20, 52, 38, 0, chainsFor(10, 2500), 680},
		{21, 66, 50, 0, chainsFor(14, 4200), 140},
		{22, 58, 44, 0, chainsFor(11, 3300), 310},
		{23, 24, 18, 0, chainsFor(5, 900), 850},
		{24, 50, 78, 0, nil, 3000},
		{25, 76, 58, 0, chainsFor(16, 4800), 260},
		{26, 62, 48, 0, chainsFor(13, 3900), 180},
		{27, 34, 26, 0, chainsFor(9, 2100), 570},
		{28, 46, 34, 0, chainsFor(12, 2900), 390},
		{29, 88, 70, 0, chainsFor(20, 5600), 110},
		{30, 26, 18, 0, chainsFor(6, 1300), 475},
		{31, 54, 40, 0, chainsFor(13, 3700), 205},
		{32, 32, 24, 0, chainsFor(8, 1600), 640},
	}
	write("p93791", 32, 101, 105, p93791)
}
