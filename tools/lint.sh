#!/usr/bin/env sh
# tools/lint.sh — the one-command local lint gate, mirroring the CI
# lint job exactly: standard go vet, the project's invariant suite
# (cmd/sitlint, built -race like CI) run as a vet tool, the
# suppression audit, then govulncheck when available.
#
#   ./tools/lint.sh                          # whole module
#   ./tools/lint.sh ./internal/core          # a package subset
#   ./tools/lint.sh -sarif > sitlint.sarif   # also the CI SARIF artifact
#   ./tools/lint.sh -analyzers=lockorder     # one analyzer, standalone
#
# Any argument starting with "-" is passed through to a standalone
# sitlint run (use the -flag=value form for flags that take a value),
# so a local invocation can produce exactly what CI archives. Without
# flags the standalone run is skipped: the vettool pass already
# analyzed everything.
set -eu

cd "$(dirname "$0")/.."

flags=""
pkgs=""
for arg in "$@"; do
    case "$arg" in
    -*) flags="$flags $arg" ;;
    *) pkgs="$pkgs $arg" ;;
    esac
done
[ -n "$pkgs" ] || pkgs="./..."

echo "== go vet" >&2
# shellcheck disable=SC2086
go vet $pkgs

echo "== sitlint invariant suite (race-built vettool)" >&2
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -race -o "$tmp/sitlint" ./cmd/sitlint
# shellcheck disable=SC2086
go vet -vettool="$tmp/sitlint" $pkgs

echo "== sitlint suppression audit" >&2
# Audit chatter goes to stderr so `lint.sh -sarif > file` captures
# nothing but the SARIF document on stdout.
# shellcheck disable=SC2086
"$tmp/sitlint" -audit $pkgs >&2

if [ -n "$flags" ]; then
    echo "== sitlint$flags" >&2
    # shellcheck disable=SC2086
    "$tmp/sitlint" $flags $pkgs
fi

if command -v govulncheck >/dev/null 2>&1; then
    echo "== govulncheck" >&2
    # shellcheck disable=SC2086
    govulncheck $pkgs
else
    echo "== govulncheck not installed; skipped (CI runs it)" >&2
fi

echo "lint OK" >&2
