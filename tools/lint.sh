#!/usr/bin/env sh
# tools/lint.sh — the one-command local lint gate, mirroring the CI
# lint job: standard go vet, then the project's own invariant suite
# (cmd/sitlint) run as a vet tool, then govulncheck when available.
#
#   ./tools/lint.sh            # whole module
#   ./tools/lint.sh ./internal/core ./internal/tam
set -eu

cd "$(dirname "$0")/.."

pkgs="${*:-./...}"

echo "== go vet"
# shellcheck disable=SC2086
go vet $pkgs

echo "== sitlint (railmutate ctxflow detrand traceevent errwrapcheck)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/sitlint" ./cmd/sitlint
# shellcheck disable=SC2086
go vet -vettool="$tmp/sitlint" $pkgs

if command -v govulncheck >/dev/null 2>&1; then
    echo "== govulncheck"
    # shellcheck disable=SC2086
    govulncheck $pkgs
else
    echo "== govulncheck not installed; skipped (CI runs it)"
fi

echo "lint OK"
