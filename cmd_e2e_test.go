package sitam

// End-to-end tests of the command-line tools: each binary is compiled
// once into a temp dir and driven with small workloads, checking exit
// status and the shape of its output.

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

var buildOnce sync.Once
var buildDir string
var buildErr error

func binaries(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "sitam-bin")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", buildDir+string(os.PathSeparator), "./cmd/...")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = err
			t.Logf("go build output:\n%s", out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building binaries: %v", buildErr)
	}
	return buildDir
}

func runTool(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestE2ESocinfo(t *testing.T) {
	out := runTool(t, "socinfo", "-soc", "d695", "-w", "1,8,16")
	for _, want := range []string{"d695", "c6288", "lower bound", "TR-Architect"} {
		if !strings.Contains(out, want) {
			t.Errorf("socinfo output missing %q:\n%s", want, out)
		}
	}
}

func TestE2ETamopt(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "out.json")
	out := runTool(t, "tamopt", "-soc", "d695", "-w", "12", "-nr", "1500", "-g", "2",
		"-gantt", "-json", jsonPath)
	for _, want := range []string{"architecture:", "SI schedule", "T_soc", "Gantt"} {
		if !strings.Contains(out, want) {
			t.Errorf("tamopt output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"schema\": 1") {
		t.Errorf("json output malformed:\n%s", data)
	}
	// Baseline and ILS modes run too.
	if out := runTool(t, "tamopt", "-soc", "d695", "-w", "12", "-nr", "1000", "-g", "2", "-baseline"); !strings.Contains(out, "T_soc") {
		t.Errorf("baseline mode output:\n%s", out)
	}
	if out := runTool(t, "tamopt", "-soc", "d695", "-w", "12", "-nr", "1000", "-g", "2", "-ils", "3"); !strings.Contains(out, "T_soc") {
		t.Errorf("ils mode output:\n%s", out)
	}
}

func TestE2ESigenSicompactPipe(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "raw.pat")
	comp := filepath.Join(dir, "comp.pat")
	out := runTool(t, "sigen", "-soc", "d695", "-nr", "800", "-o", raw, "-stats")
	if !strings.Contains(out, "wrote 800 patterns") || !strings.Contains(out, "care bits") {
		t.Errorf("sigen output:\n%s", out)
	}
	out = runTool(t, "sicompact", "-soc", "d695", "-g", "2", "-o", comp, raw)
	if !strings.Contains(out, "compacted") || !strings.Contains(out, "groups") {
		t.Errorf("sicompact output:\n%s", out)
	}
	if _, err := os.Stat(comp); err != nil {
		t.Fatal(err)
	}
	// Topology modes of sigen.
	out = runTool(t, "sigen", "-soc", "d695", "-model", "ma", "-fanout", "1", "-width", "8", "-k", "2")
	if !strings.Contains(out, "space ") {
		t.Errorf("sigen ma output:\n%s", out)
	}
	out = runTool(t, "sigen", "-soc", "d695", "-model", "mt", "-fanout", "1", "-width", "6", "-k", "1", "-cap", "500")
	if !strings.Contains(out, "wrote 500 patterns") {
		t.Errorf("sigen mt output:\n%s", out)
	}
}

func TestE2ESocbenchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("socbench quick sweep takes a few seconds")
	}
	out := runTool(t, "socbench", "-quick", "-soc", "p34392", "-markdown")
	for _, want := range []string{"motivation estimate", "#### p34392", "| Wmax |"} {
		if !strings.Contains(out, want) {
			t.Errorf("socbench output missing %q:\n%s", want, out)
		}
	}
	out = runTool(t, "socbench", "-coverage", "-quick")
	if !strings.Contains(out, "coverage") {
		t.Errorf("socbench coverage output:\n%s", out)
	}
}

func TestE2EToolRejectsBadFlags(t *testing.T) {
	cmd := exec.Command(filepath.Join(binaries(t), "tamopt"), "-soc", "nonexistent")
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Errorf("tamopt accepted unknown SOC:\n%s", out)
	}
	cmd = exec.Command(filepath.Join(binaries(t), "sicompact"))
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Errorf("sicompact accepted missing args:\n%s", out)
	}
}

// exitCode runs a tool and returns its exit code and combined output,
// treating any exit (clean or not) as a result rather than a failure.
func exitCode(t *testing.T, cmd *exec.Cmd) (int, string) {
	t.Helper()
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("%v: %v\n%s", cmd.Args, err, out)
	}
	return ee.ExitCode(), string(out)
}

// TestE2ETamoptTimeout drives tamopt into a deadline mid-optimization:
// it must still print a result, mark it partial, and exit with the
// documented partial-result code 3.
func TestE2ETamoptTimeout(t *testing.T) {
	cmd := exec.Command(filepath.Join(binaries(t), "tamopt"),
		"-soc", "p93791", "-w", "40", "-nr", "4000", "-g", "2", "-ils", "100000",
		"-timeout", "2s")
	code, out := exitCode(t, cmd)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3 (partial)\n%s", code, out)
	}
	if !strings.Contains(out, "RESULT PARTIAL (deadline)") {
		t.Errorf("output missing partial marker:\n%s", out)
	}
	if !strings.Contains(out, "T_soc") && !strings.Contains(out, "architecture:") {
		t.Errorf("partial run printed no result:\n%s", out)
	}
}

// TestE2ETamoptSIGINT interrupts a long tamopt run and checks the
// signal is treated like a deadline: partial marker, exit code 3.
func TestE2ETamoptSIGINT(t *testing.T) {
	cmd := exec.Command(filepath.Join(binaries(t), "tamopt"),
		"-soc", "p93791", "-w", "40", "-nr", "4000", "-g", "2", "-ils", "100000")
	var buf strings.Builder
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(1500 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	out := buf.String()
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("tamopt survived SIGINT without exit code: %v\n%s", err, out)
	}
	if ee.ExitCode() != 3 {
		t.Fatalf("exit code = %d, want 3 (partial)\n%s", ee.ExitCode(), out)
	}
	if !strings.Contains(out, "RESULT PARTIAL (interrupted)") {
		t.Errorf("output missing interrupted marker:\n%s", out)
	}
}

// TestE2ESigenTimeout checks sigen writes the generated prefix, keeps
// stdout parseable, and reports the partial marker on stderr.
func TestE2ESigenTimeout(t *testing.T) {
	cmd := exec.Command(filepath.Join(binaries(t), "sigen"),
		"-soc", "p93791", "-nr", "50000000", "-timeout", "1s")
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 3 {
		t.Fatalf("err = %v, want exit code 3\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "RESULT PARTIAL (deadline)") {
		t.Errorf("stderr missing partial marker:\n%s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "space ") {
		t.Errorf("stdout is not a pattern file:\n%.200s", stdout.String())
	}
}

// TestE2EErrorsGoToStderr pins the CLI hygiene contract: an input
// error produces a non-zero (and non-partial) exit code and lands on
// stderr, leaving stdout clean.
func TestE2EErrorsGoToStderr(t *testing.T) {
	cmd := exec.Command(filepath.Join(binaries(t), "tamopt"), "-soc", "nonexistent")
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Fatalf("err = %v, want exit code 1\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "tamopt:") {
		t.Errorf("stderr missing prefixed error:\n%s", stderr.String())
	}
	if strings.Contains(stdout.String(), "error") {
		t.Errorf("error text leaked to stdout:\n%s", stdout.String())
	}
}

// --- sitamd daemon e2e ------------------------------------------------

// syncBuffer is a goroutine-safe writer the daemon's streams land in
// while the test polls for landmark lines.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`listening on (http://\S+)`)

// startSitamd launches the daemon on a free port and waits for its
// listen line. The caller owns shutdown.
func startSitamd(t *testing.T, args ...string) (*exec.Cmd, *syncBuffer, string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), "sitamd"),
		append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	out := &syncBuffer{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			return cmd, out, m[1]
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("sitamd never printed its listen line:\n%s", out.String())
	return nil, nil, ""
}

// submitJob posts a job and returns its ID.
func submitJob(t *testing.T, base, body string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, raw)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	return acc.ID
}

// jobStatus fetches a job's status record.
func jobStatus(t *testing.T, base, id string) (state, errMsg string, partial bool, ok bool) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return "", "", false, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", "", false, false
	}
	var st struct {
		State  string `json:"state"`
		Error  string `json:"error"`
		Result *struct {
			Partial bool `json:"partial"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", "", false, false
	}
	return st.State, st.Error, st.Result != nil && st.Result.Partial, true
}

func waitJobState(t *testing.T, base, id, want string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if state, _, _, ok := jobStatus(t, base, id); ok && state == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	state, errMsg, _, _ := jobStatus(t, base, id)
	t.Fatalf("job %s never reached %s (state %s, err %q)", id, want, state, errMsg)
}

// TestE2ESitamdServeDrain runs the full daemon lifecycle: serve a job
// to completion, SIGTERM, graceful drain, metrics flush, exit 0.
func TestE2ESitamdServeDrain(t *testing.T) {
	cmd, out, base := startSitamd(t)
	id := submitJob(t, base, `{"soc":"d695","wmax":12,"nr":200,"groups":2,"seed":1}`)
	waitJobState(t, base, id, "done")

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("drain exit: %v\n%s", err, out.String())
	}
	for _, want := range []string{"draining: admission closed", "final metrics snapshot", "serve_done", "drained cleanly"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("daemon output missing %q:\n%s", want, out.String())
		}
	}
}

// TestE2ESitamdJournalKill9 is the crash-recovery gate: kill -9 the
// daemon with one finished job and one mid-flight, restart on the same
// journal, and check the finished result replays while the crash
// victim is closed out as failed.
func TestE2ESitamdJournalKill9(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "jobs.jsonl")
	cmd, _, base := startSitamd(t, "-journal", journal, "-test-hooks", "-workers", "2")

	// Job A exhausts a tiny eval budget -> terminal partial, journaled.
	a := submitJob(t, base, `{"soc":"d695","wmax":12,"nr":200,"groups":2,"seed":1,"budget":5}`)
	waitJobState(t, base, a, "partial")
	// Job B stalls mid-flight -> the crash victim.
	b := submitJob(t, base, `{"soc":"d695","wmax":12,"nr":200,"groups":2,"seed":1,"chaos":{"sleepMS":60000}}`)
	waitJobState(t, base, b, "running")

	if err := cmd.Process.Kill(); err != nil { // kill -9: no drain, no journal close
		t.Fatal(err)
	}
	cmd.Wait()

	cmd2, out2, base2 := startSitamd(t, "-journal", journal)
	state, _, partial, ok := jobStatus(t, base2, a)
	if !ok || state != "partial" || !partial {
		t.Errorf("job %s after restart: state=%s partial=%v ok=%v, want replayed partial", a, state, partial, ok)
	}
	state, errMsg, _, ok := jobStatus(t, base2, b)
	if !ok || state != "failed" || !strings.Contains(errMsg, "crashed") {
		t.Errorf("job %s after restart: state=%s err=%q ok=%v, want failed crash record", b, state, errMsg, ok)
	}
	// The recovered daemon keeps serving and continues the ID sequence.
	c := submitJob(t, base2, `{"soc":"d695","wmax":12,"nr":200,"groups":2,"seed":1}`)
	if c == a || c == b {
		t.Errorf("recovered daemon reused job ID %s", c)
	}
	waitJobState(t, base2, c, "done")

	cmd2.Process.Signal(syscall.SIGTERM)
	if err := cmd2.Wait(); err != nil {
		t.Fatalf("recovered daemon drain exit: %v\n%s", err, out2.String())
	}
}

// TestE2ESitamdSecondSIGINTForcesExit pins the escape hatch: a second
// interrupt during a slow graceful drain exits 130 immediately.
func TestE2ESitamdSecondSIGINTForcesExit(t *testing.T) {
	cmd, out, base := startSitamd(t, "-test-hooks", "-drain", "30s")
	id := submitJob(t, base, `{"soc":"d695","wmax":12,"nr":200,"groups":2,"seed":1,"chaos":{"sleepMS":60000}}`)
	waitJobState(t, base, id, "running")

	// First interrupt: the drain starts and blocks on the sleeping job.
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(out.String(), "draining") && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	// Second interrupt: forced exit, code 130.
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 130 {
		t.Fatalf("err = %v, want exit code 130\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "forcing exit") {
		t.Errorf("output missing forced-exit marker:\n%s", out.String())
	}
}

// TestE2ETamoptSIGINTDrainBanner checks the batch CLIs advertise the
// force-exit escape hatch when interrupted. The forced exit itself is
// pinned where it can be exercised deterministically: the daemon e2e
// above (slow drain on a stalled job) and the cli package's re-exec
// test — a second SIGINT against tamopt's millisecond drain coalesces
// with the first in the runtime's signal queue more often than not.
func TestE2ETamoptSIGINTDrainBanner(t *testing.T) {
	cmd := exec.Command(filepath.Join(binaries(t), "tamopt"),
		"-soc", "p93791", "-w", "40", "-nr", "4000", "-g", "2", "-ils", "100000")
	out := &syncBuffer{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(1500 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 3 {
		t.Fatalf("err = %v, want exit code 3\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "press Ctrl-C again to force exit") {
		t.Errorf("output missing force-exit hint:\n%s", out.String())
	}
}
