package sitam

// End-to-end tests of the command-line tools: each binary is compiled
// once into a temp dir and driven with small workloads, checking exit
// status and the shape of its output.

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var buildOnce sync.Once
var buildDir string
var buildErr error

func binaries(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "sitam-bin")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", buildDir+string(os.PathSeparator), "./cmd/...")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = err
			t.Logf("go build output:\n%s", out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building binaries: %v", buildErr)
	}
	return buildDir
}

func runTool(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestE2ESocinfo(t *testing.T) {
	out := runTool(t, "socinfo", "-soc", "d695", "-w", "1,8,16")
	for _, want := range []string{"d695", "c6288", "lower bound", "TR-Architect"} {
		if !strings.Contains(out, want) {
			t.Errorf("socinfo output missing %q:\n%s", want, out)
		}
	}
}

func TestE2ETamopt(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "out.json")
	out := runTool(t, "tamopt", "-soc", "d695", "-w", "12", "-nr", "1500", "-g", "2",
		"-gantt", "-json", jsonPath)
	for _, want := range []string{"architecture:", "SI schedule", "T_soc", "Gantt"} {
		if !strings.Contains(out, want) {
			t.Errorf("tamopt output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"schema\": 1") {
		t.Errorf("json output malformed:\n%s", data)
	}
	// Baseline and ILS modes run too.
	if out := runTool(t, "tamopt", "-soc", "d695", "-w", "12", "-nr", "1000", "-g", "2", "-baseline"); !strings.Contains(out, "T_soc") {
		t.Errorf("baseline mode output:\n%s", out)
	}
	if out := runTool(t, "tamopt", "-soc", "d695", "-w", "12", "-nr", "1000", "-g", "2", "-ils", "3"); !strings.Contains(out, "T_soc") {
		t.Errorf("ils mode output:\n%s", out)
	}
}

func TestE2ESigenSicompactPipe(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "raw.pat")
	comp := filepath.Join(dir, "comp.pat")
	out := runTool(t, "sigen", "-soc", "d695", "-nr", "800", "-o", raw, "-stats")
	if !strings.Contains(out, "wrote 800 patterns") || !strings.Contains(out, "care bits") {
		t.Errorf("sigen output:\n%s", out)
	}
	out = runTool(t, "sicompact", "-soc", "d695", "-g", "2", "-o", comp, raw)
	if !strings.Contains(out, "compacted") || !strings.Contains(out, "groups") {
		t.Errorf("sicompact output:\n%s", out)
	}
	if _, err := os.Stat(comp); err != nil {
		t.Fatal(err)
	}
	// Topology modes of sigen.
	out = runTool(t, "sigen", "-soc", "d695", "-model", "ma", "-fanout", "1", "-width", "8", "-k", "2")
	if !strings.Contains(out, "space ") {
		t.Errorf("sigen ma output:\n%s", out)
	}
	out = runTool(t, "sigen", "-soc", "d695", "-model", "mt", "-fanout", "1", "-width", "6", "-k", "1", "-cap", "500")
	if !strings.Contains(out, "wrote 500 patterns") {
		t.Errorf("sigen mt output:\n%s", out)
	}
}

func TestE2ESocbenchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("socbench quick sweep takes a few seconds")
	}
	out := runTool(t, "socbench", "-quick", "-soc", "p34392", "-markdown")
	for _, want := range []string{"motivation estimate", "#### p34392", "| Wmax |"} {
		if !strings.Contains(out, want) {
			t.Errorf("socbench output missing %q:\n%s", want, out)
		}
	}
	out = runTool(t, "socbench", "-coverage", "-quick")
	if !strings.Contains(out, "coverage") {
		t.Errorf("socbench coverage output:\n%s", out)
	}
}

func TestE2EToolRejectsBadFlags(t *testing.T) {
	cmd := exec.Command(filepath.Join(binaries(t), "tamopt"), "-soc", "nonexistent")
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Errorf("tamopt accepted unknown SOC:\n%s", out)
	}
	cmd = exec.Command(filepath.Join(binaries(t), "sicompact"))
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Errorf("sicompact accepted missing args:\n%s", out)
	}
}

// exitCode runs a tool and returns its exit code and combined output,
// treating any exit (clean or not) as a result rather than a failure.
func exitCode(t *testing.T, cmd *exec.Cmd) (int, string) {
	t.Helper()
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("%v: %v\n%s", cmd.Args, err, out)
	}
	return ee.ExitCode(), string(out)
}

// TestE2ETamoptTimeout drives tamopt into a deadline mid-optimization:
// it must still print a result, mark it partial, and exit with the
// documented partial-result code 3.
func TestE2ETamoptTimeout(t *testing.T) {
	cmd := exec.Command(filepath.Join(binaries(t), "tamopt"),
		"-soc", "p93791", "-w", "40", "-nr", "4000", "-g", "2", "-ils", "100000",
		"-timeout", "2s")
	code, out := exitCode(t, cmd)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3 (partial)\n%s", code, out)
	}
	if !strings.Contains(out, "RESULT PARTIAL (deadline)") {
		t.Errorf("output missing partial marker:\n%s", out)
	}
	if !strings.Contains(out, "T_soc") && !strings.Contains(out, "architecture:") {
		t.Errorf("partial run printed no result:\n%s", out)
	}
}

// TestE2ETamoptSIGINT interrupts a long tamopt run and checks the
// signal is treated like a deadline: partial marker, exit code 3.
func TestE2ETamoptSIGINT(t *testing.T) {
	cmd := exec.Command(filepath.Join(binaries(t), "tamopt"),
		"-soc", "p93791", "-w", "40", "-nr", "4000", "-g", "2", "-ils", "100000")
	var buf strings.Builder
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(1500 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	out := buf.String()
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("tamopt survived SIGINT without exit code: %v\n%s", err, out)
	}
	if ee.ExitCode() != 3 {
		t.Fatalf("exit code = %d, want 3 (partial)\n%s", ee.ExitCode(), out)
	}
	if !strings.Contains(out, "RESULT PARTIAL (interrupted)") {
		t.Errorf("output missing interrupted marker:\n%s", out)
	}
}

// TestE2ESigenTimeout checks sigen writes the generated prefix, keeps
// stdout parseable, and reports the partial marker on stderr.
func TestE2ESigenTimeout(t *testing.T) {
	cmd := exec.Command(filepath.Join(binaries(t), "sigen"),
		"-soc", "p93791", "-nr", "50000000", "-timeout", "1s")
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 3 {
		t.Fatalf("err = %v, want exit code 3\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "RESULT PARTIAL (deadline)") {
		t.Errorf("stderr missing partial marker:\n%s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "space ") {
		t.Errorf("stdout is not a pattern file:\n%.200s", stdout.String())
	}
}

// TestE2EErrorsGoToStderr pins the CLI hygiene contract: an input
// error produces a non-zero (and non-partial) exit code and lands on
// stderr, leaving stdout clean.
func TestE2EErrorsGoToStderr(t *testing.T) {
	cmd := exec.Command(filepath.Join(binaries(t), "tamopt"), "-soc", "nonexistent")
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Fatalf("err = %v, want exit code 1\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "tamopt:") {
		t.Errorf("stderr missing prefixed error:\n%s", stderr.String())
	}
	if strings.Contains(stdout.String(), "error") {
		t.Errorf("error text leaked to stdout:\n%s", stdout.String())
	}
}
